// scalparc-trace-report: summarize (and validate) a Chrome trace_event JSON
// written by `scalparc train --trace-out`.
//
// The report mirrors the paper's presentation: a per-phase total table and a
// per-level breakdown of the five §4 phases in modeled seconds (max over
// ranks, the quantity the scalability argument is about), followed by the
// top-k slowest spans by wall time — where the simulation itself spent real
// time. --validate turns the tool into a schema checker for CI: it verifies
// the trace parses, every rank emitted a process, phase coverage is
// SPMD-symmetric, and (for complete traces) that the per-rank span vtimes
// tile InductionStats::total_seconds within 1%. Traces from recovered runs
// get cross-checked too: elastic_restore spans must pair with the
// checkpoint.elastic_restores / recovery.retile_bytes counters, and any
// recovery.* family must carry the recovery.outcome gauge (a recovery that
// escaped classification is exactly what the chaos soak hunts). Health-
// monitored runs get a heartbeat cross-check: the Hub's received counter
// must agree with the summed per-rank health.heartbeats_sent, and a
// straggler classification without received heartbeats is an error.
//
// The tool also reads the continuous-telemetry documents (PR 10): a
// scalparc-timeseries-v1 JSONL (--timeseries, rendered with --timeline),
// a Prometheus text-exposition snapshot (--expose), and a
// scalparc-flight-v1 flight-recorder dump (--flight). --validate covers all
// of them: monotone epochs and counter-delta consistency for the
// timeseries (including agreement with the final registry when --metrics
// is given), well-formed TYPE-declared samples for the exposition, and
// flight events cross-checked against the recovery.* / predict.swaps
// counters. --critical-path prints a per-level table attributing modeled
// time to the slowest rank per phase lane with a compute vs. wait split.
//
// usage: scalparc-trace-report [TRACE.json] [flags]
//   --top K          slowest spans to list (default 5)
//   --metrics FILE   also check/print a --metrics-out file
//   --critical-path  per-level slowest-rank table (compute vs wait split)
//   --timeseries F   scalparc-timeseries-v1 JSONL from --telemetry-out
//   --timeline       render the timeseries as a textual timeline
//   --expose F       Prometheus exposition snapshot from --expose-out
//   --flight F       scalparc-flight-v1 JSONL from --flight-out
//   --validate       run the CI checks; non-zero exit on any failure

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mp/metrics.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace {

using scalparc::util::Json;

struct SpanRow {
  std::string name;
  int rank = 0;
  int level = -1;
  std::int64_t nodes = -1;
  std::int64_t records = -1;
  std::int64_t bytes = -1;
  double wall_s = 0.0;
  double ts_s = 0.0;
  double vtime_begin = 0.0;
  double vtime_end = 0.0;
  int depth = 0;
};

struct Trace {
  std::vector<SpanRow> spans;
  Json metadata;  // otherData object (null when absent)
};

constexpr const char* kLevelPhases[] = {"findsplit_i", "findsplit_ii",
                                        "performsplit_i", "performsplit_ii"};

double arg_number(const Json& args, const std::string& key, double fallback) {
  const Json* v = args.find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

Trace load_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const Json doc = Json::parse(buffer.str());

  Trace trace;
  if (const Json* other = doc.find("otherData")) trace.metadata = *other;
  const Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    if (event.at("ph").as_string() != "X") continue;  // skip metadata events
    SpanRow row;
    row.name = event.at("name").as_string();
    row.rank = static_cast<int>(event.at("pid").as_int());
    row.ts_s = event.at("ts").as_double() / 1e6;
    row.wall_s = event.at("dur").as_double() / 1e6;
    const Json& args = event.at("args");
    row.level = static_cast<int>(arg_number(args, "level", -1.0));
    row.nodes = static_cast<std::int64_t>(arg_number(args, "nodes", -1.0));
    row.records = static_cast<std::int64_t>(arg_number(args, "records", -1.0));
    row.bytes = static_cast<std::int64_t>(arg_number(args, "bytes", -1.0));
    row.vtime_begin = arg_number(args, "vtime_begin_s", 0.0);
    row.vtime_end = arg_number(args, "vtime_end_s", 0.0);
    row.depth = static_cast<int>(arg_number(args, "depth", 0.0));
    trace.spans.push_back(std::move(row));
  }
  return trace;
}

double vtime_of(const SpanRow& row) {
  return std::max(0.0, row.vtime_end - row.vtime_begin);
}

void print_report(const Trace& trace, int top_k, std::ostream& out) {
  std::set<int> ranks;
  for (const SpanRow& row : trace.spans) ranks.insert(row.rank);

  out << "spans: " << trace.spans.size() << "   ranks: " << ranks.size();
  if (const Json* complete = trace.metadata.find("complete")) {
    out << "   complete: " << (complete->as_bool() ? "yes" : "no");
  }
  out << "\n\n";

  // Per-phase totals. vtime is summed within a rank then maxed over ranks
  // (the run's critical path); wall time and bytes are summed over all
  // ranks (the simulation's total work).
  std::map<std::string, std::map<int, double>> phase_rank_vtime;
  std::map<std::string, double> phase_wall;
  std::map<std::string, std::int64_t> phase_bytes;
  std::map<std::string, std::int64_t> phase_count;
  for (const SpanRow& row : trace.spans) {
    phase_rank_vtime[row.name][row.rank] += vtime_of(row);
    phase_wall[row.name] += row.wall_s;
    if (row.bytes > 0) phase_bytes[row.name] += row.bytes;
    ++phase_count[row.name];
  }
  out << "per-phase totals:\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-20s %8s %12s %12s %12s\n", "phase",
                "spans", "vtime-s", "wall-s", "MB");
  out << line;
  // Phases in lane order so the table reads in §4 order.
  std::vector<std::string> ordered;
  for (int lane = 1; lane < scalparc::util::trace_num_lanes(); ++lane) {
    const std::string name(scalparc::util::trace_lane_name(lane));
    if (phase_count.count(name)) ordered.push_back(name);
  }
  for (const auto& [name, count] : phase_count) {
    if (std::find(ordered.begin(), ordered.end(), name) == ordered.end()) {
      ordered.push_back(name);
    }
  }
  for (const std::string& name : ordered) {
    double vtime = 0.0;
    for (const auto& [rank, v] : phase_rank_vtime[name]) {
      vtime = std::max(vtime, v);
    }
    std::snprintf(line, sizeof(line), "  %-20s %8lld %12.6f %12.6f %12.3f\n",
                  name.c_str(), static_cast<long long>(phase_count[name]),
                  vtime, phase_wall[name],
                  static_cast<double>(phase_bytes[name]) / 1e6);
    out << line;
  }

  // Per-level table of the four level phases (presort has no level).
  std::map<int, std::map<std::string, std::map<int, double>>> level_table;
  std::map<int, std::int64_t> level_nodes;
  std::map<int, std::int64_t> level_records;
  for (const SpanRow& row : trace.spans) {
    if (row.level < 0) continue;
    level_table[row.level][row.name][row.rank] += vtime_of(row);
    if (row.nodes >= 0) {
      level_nodes[row.level] = std::max(level_nodes[row.level], row.nodes);
    }
    if (row.records >= 0) {
      level_records[row.level] =
          std::max(level_records[row.level], row.records);
    }
  }
  if (!level_table.empty()) {
    out << "\nper-level modeled seconds (max over ranks):\n";
    std::snprintf(line, sizeof(line),
                  "  %5s %8s %10s %12s %12s %14s %15s\n", "level", "nodes",
                  "records", "findsplit_i", "findsplit_ii", "performsplit_i",
                  "performsplit_ii");
    out << line;
    for (const auto& [level, phases] : level_table) {
      double cells[4] = {0.0, 0.0, 0.0, 0.0};
      for (int k = 0; k < 4; ++k) {
        const auto it = phases.find(kLevelPhases[k]);
        if (it == phases.end()) continue;
        for (const auto& [rank, v] : it->second) {
          cells[k] = std::max(cells[k], v);
        }
      }
      std::snprintf(line, sizeof(line),
                    "  %5d %8lld %10lld %12.6f %12.6f %14.6f %15.6f\n", level,
                    static_cast<long long>(level_nodes[level]),
                    static_cast<long long>(level_records[level]), cells[0],
                    cells[1], cells[2], cells[3]);
      out << line;
    }
  }

  // Top-k slowest spans by wall time: where the run actually burned CPU.
  std::vector<const SpanRow*> by_wall;
  by_wall.reserve(trace.spans.size());
  for (const SpanRow& row : trace.spans) by_wall.push_back(&row);
  std::sort(by_wall.begin(), by_wall.end(),
            [](const SpanRow* a, const SpanRow* b) {
              return a->wall_s > b->wall_s;
            });
  const int n = std::min<int>(top_k, static_cast<int>(by_wall.size()));
  if (n > 0) {
    out << "\ntop " << n << " slowest spans (wall time):\n";
    for (int i = 0; i < n; ++i) {
      const SpanRow& row = *by_wall[static_cast<std::size_t>(i)];
      std::snprintf(line, sizeof(line),
                    "  %9.6fs  rank %d  %-18s level %d\n", row.wall_s,
                    row.rank, row.name.c_str(), row.level);
      out << line;
    }
  }
}

// CI checks; prints one line per failure and returns the failure count.
int validate(const Trace& trace, const std::string& metrics_path,
             std::ostream& out) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    out << "FAIL: " << what << "\n";
    ++failures;
  };

  if (trace.spans.empty()) fail("trace contains no spans");

  // Metrics embedded in the trace metadata drive the recovery-aware
  // relaxations below: a recovered run's trace legitimately mixes spans
  // from attempts with different world sizes (a grow retry adds joiner
  // ranks beyond the launch world; the failed attempt's ranks show presort
  // while the resumed attempt's show checkpoint_restore).
  scalparc::mp::MetricsSnapshot meta_metrics;
  const Json* metrics_meta = trace.metadata.find("metrics");
  if (metrics_meta != nullptr) {
    meta_metrics = scalparc::mp::MetricsSnapshot::from_json(*metrics_meta);
  }
  const bool recovered = meta_metrics.value("recovery.recoveries", 0.0) > 0.0;
  const bool grew = meta_metrics.value("recovery.grows", 0.0) > 0.0;

  // Every rank announced in the metadata must have emitted spans, and no
  // span may come from an unknown rank (joiners from a grow recovery are
  // allowed past the launch world).
  std::set<int> ranks;
  for (const SpanRow& row : trace.spans) ranks.insert(row.rank);
  if (const Json* meta_ranks = trace.metadata.find("ranks")) {
    const int expected = static_cast<int>(meta_ranks->as_int());
    for (int r = 0; r < expected; ++r) {
      if (!ranks.count(r)) {
        fail("rank " + std::to_string(r) + " emitted no spans");
      }
    }
    for (const int r : ranks) {
      if (r < 0 || (r >= expected && !grew)) {
        fail("span from out-of-range rank " + std::to_string(r));
      }
    }
  }

  // Phase coverage must be SPMD-symmetric: a phase present on any rank must
  // be present on every rank (a fresh run shows presort; a resumed run
  // shows checkpoint_restore instead — symmetry covers both shapes). Mixed
  // multi-attempt traces from recovered runs are exempt.
  std::map<std::string, std::set<int>> phase_ranks;
  for (const SpanRow& row : trace.spans) {
    phase_ranks[row.name].insert(row.rank);
  }
  if (!recovered) {
    for (const auto& [name, present] : phase_ranks) {
      if (present.size() != ranks.size()) {
        fail("phase '" + name + "' appears on " +
             std::to_string(present.size()) + " of " +
             std::to_string(ranks.size()) + " ranks");
      }
    }
  }
  const bool has_levels = !trace.spans.empty() &&
                          std::any_of(trace.spans.begin(), trace.spans.end(),
                                      [](const SpanRow& r) {
                                        return r.level >= 0;
                                      });
  if (has_levels) {
    for (const char* phase : kLevelPhases) {
      if (!phase_ranks.count(phase)) {
        fail(std::string("level phase '") + phase + "' has no spans");
      }
    }
  }
  if (!phase_ranks.count("presort") && !phase_ranks.count("checkpoint_restore")) {
    fail("neither presort nor checkpoint_restore spans present");
  }

  // Recovery cross-checks: a trace that shows recovery activity (an
  // elastic_restore re-tile span) must carry the matching recovery metrics,
  // and vice versa — a recovery.* family without an outcome gauge means the
  // run escaped classification.
  if (metrics_meta != nullptr) {
    const scalparc::mp::MetricsSnapshot& metrics = meta_metrics;
    const bool has_elastic_spans = phase_ranks.count("elastic_restore") > 0;
    const double elastic_restores =
        metrics.value("checkpoint.elastic_restores", 0.0);
    if (has_elastic_spans && elastic_restores < 1.0) {
      fail("elastic_restore spans present but checkpoint.elastic_restores "
           "counter is missing or zero");
    }
    if (has_elastic_spans && metrics.find("recovery.retile_bytes") == nullptr) {
      fail("elastic_restore spans present but recovery.retile_bytes counter "
           "is missing");
    }
    bool has_recovery_metrics = false;
    for (const auto& [name, metric] : metrics.metrics()) {
      (void)metric;
      if (name.rfind("recovery.", 0) == 0) {
        has_recovery_metrics = true;
        break;
      }
    }
    if (has_recovery_metrics &&
        metrics.find("recovery.outcome") == nullptr) {
      fail("recovery.* metrics present but the recovery.outcome gauge is "
           "missing (run escaped classification)");
    }
    if (metrics.value("recovery.recoveries", 0.0) >
        metrics.value("recovery.attempts", 0.0)) {
      fail("recovery.recoveries exceeds recovery.attempts");
    }
    if (metrics.value("recovery.grows", 0.0) > 0.0 &&
        metrics.find("recovery.joiners_admitted") == nullptr &&
        has_elastic_spans) {
      fail("grow recoveries recorded but recovery.joiners_admitted is "
           "missing");
    }

    // Heartbeat cross-check: every per-rank heartbeat lands in the Hub's
    // registry, so the run-level received counter must cover the summed
    // per-rank sent counters. A shortfall means heartbeats were dropped on
    // the lane — exactly the kind of gray failure the health layer exists
    // to catch. Recovered runs merge counters across attempts, so the exact
    // equality only binds single-attempt traces.
    const double hb_sent = metrics.value("health.heartbeats_sent", 0.0);
    const double hb_received = metrics.value("health.heartbeats_received", 0.0);
    if (hb_sent > 0.0 && hb_received <= 0.0) {
      fail("health.heartbeats_sent recorded but health.heartbeats_received "
           "is missing or zero (heartbeat lane lost every beat)");
    }
    if (!recovered && hb_sent > 0.0 && hb_received != hb_sent) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "health.heartbeats_received (%.0f) disagrees with "
                    "health.heartbeats_sent (%.0f)",
                    hb_received, hb_sent);
      fail(msg);
    }
    if (metrics.value("health.stragglers_detected", 0.0) > 0.0 &&
        hb_received <= 0.0) {
      fail("a straggler was detected but no heartbeats were received — "
           "classification without evidence");
    }
  }

  // For complete traces the top-level spans tile each rank's virtual clock,
  // so their vtime deltas must sum to induction.total_seconds within 1%.
  // Recovered traces carry the failed attempts' spans too, so the tiling
  // argument only holds for single-attempt runs.
  const Json* complete = trace.metadata.find("complete");
  if (complete != nullptr && complete->as_bool() && metrics_meta != nullptr &&
      !recovered) {
    const scalparc::mp::MetricsSnapshot& snapshot = meta_metrics;
    const double total = snapshot.value("induction.total_seconds", -1.0);
    if (total >= 0.0) {
      std::map<int, double> rank_vtime;
      for (const SpanRow& row : trace.spans) {
        if (row.depth == 0) rank_vtime[row.rank] += vtime_of(row);
      }
      const double tolerance = std::max(0.01 * total, 1e-9);
      for (const auto& [rank, sum] : rank_vtime) {
        if (std::fabs(sum - total) > tolerance) {
          char msg[160];
          std::snprintf(msg, sizeof(msg),
                        "rank %d span vtimes sum to %.9f, metrics say "
                        "induction.total_seconds = %.9f",
                        rank, sum, total);
          fail(msg);
        }
      }
    }
  }

  if (!metrics_path.empty()) {
    std::ifstream file(metrics_path);
    if (!file) {
      fail("cannot open metrics file '" + metrics_path + "'");
    } else {
      std::stringstream buffer;
      buffer << file.rdbuf();
      try {
        const Json doc = Json::parse(buffer.str());
        if (doc.at("format").as_string() != "scalparc-metrics-v1") {
          fail("metrics file has unexpected format tag");
        }
        const scalparc::mp::MetricsSnapshot snapshot =
            scalparc::mp::MetricsSnapshot::from_json(doc.at("metrics"));
        if (snapshot.empty()) fail("metrics file holds no metrics");
      } catch (const std::exception& e) {
        fail(std::string("metrics file: ") + e.what());
      }
    }
  }

  return failures;
}

void print_metrics(const std::string& path, std::ostream& out) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const Json doc = Json::parse(buffer.str());
  const scalparc::mp::MetricsSnapshot snapshot =
      scalparc::mp::MetricsSnapshot::from_json(doc.at("metrics"));
  out << "\nmetrics (" << snapshot.size() << "):\n";
  char line[256];
  for (const auto& [name, metric] : snapshot.metrics()) {
    if (metric.kind == scalparc::mp::MetricKind::kHistogram) {
      const scalparc::mp::Histogram& h = metric.histogram;
      std::snprintf(line, sizeof(line),
                    "  %-40s histogram  count=%llu p50=%.4g p95=%.4g "
                    "p99=%.4g max=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    scalparc::mp::histogram_quantile(h, 0.50),
                    scalparc::mp::histogram_quantile(h, 0.95),
                    scalparc::mp::histogram_quantile(h, 0.99),
                    static_cast<unsigned long long>(h.max));
    } else {
      std::snprintf(
          line, sizeof(line), "  %-40s %-9s %.6g\n", name.c_str(),
          std::string(scalparc::mp::metric_kind_name(metric.kind)).c_str(),
          metric.value);
    }
    out << line;
  }
}

// ---------------------------------------------------------------------------
// Critical-path analysis: per (level, phase lane) the run can only be as
// fast as its slowest rank, and the gap between that rank and the mean is
// time every other rank spends blocked at the next collective. Summing the
// per-lane maxima gives the critical path; summing the gaps gives the
// recoverable imbalance.
// ---------------------------------------------------------------------------

void print_critical_path(const Trace& trace, std::ostream& out) {
  std::set<int> ranks;
  for (const SpanRow& row : trace.spans) ranks.insert(row.rank);
  // level -> phase -> rank -> summed vtime
  std::map<int, std::map<std::string, std::map<int, double>>> table;
  for (const SpanRow& row : trace.spans) {
    if (row.level < 0) continue;
    table[row.level][row.name][row.rank] += vtime_of(row);
  }
  if (table.empty()) {
    out << "\ncritical path: no per-level spans in this trace\n";
    return;
  }
  out << "\ncritical path per level (slowest rank per phase lane; wait = "
         "crit - mean, the time the other ranks block):\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %5s %-18s %5s %12s %12s %12s %7s\n",
                "level", "phase", "crit", "crit-s", "mean-s", "wait-s",
                "wait%");
  out << line;
  double critical_total = 0.0;
  double wait_total = 0.0;
  for (const auto& [level, phases] : table) {
    for (const char* phase : kLevelPhases) {
      const auto it = phases.find(phase);
      if (it == phases.end()) continue;
      int crit_rank = -1;
      double crit = -1.0;
      double sum = 0.0;
      for (const auto& [rank, v] : it->second) {
        sum += v;
        if (v > crit) {
          crit = v;
          crit_rank = rank;
        }
      }
      if (crit < 0.0) crit = 0.0;
      // Absent ranks contribute zero: a lane a rank never entered still
      // waits out the slowest rank's lane time at the next collective.
      const double mean = ranks.empty()
                              ? 0.0
                              : sum / static_cast<double>(ranks.size());
      const double wait = crit - mean;
      critical_total += crit;
      wait_total += wait;
      std::snprintf(line, sizeof(line),
                    "  %5d %-18s %5d %12.6f %12.6f %12.6f %6.1f%%\n", level,
                    phase, crit_rank, crit, mean, wait,
                    crit > 0.0 ? 100.0 * wait / crit : 0.0);
      out << line;
    }
  }
  std::snprintf(line, sizeof(line),
                "  critical path %.6fs, imbalance wait %.6fs (%.1f%% "
                "recoverable by perfect balance)\n",
                critical_total, wait_total,
                critical_total > 0.0 ? 100.0 * wait_total / critical_total
                                     : 0.0);
  out << line;
}

// ---------------------------------------------------------------------------
// Continuous-telemetry documents.
// ---------------------------------------------------------------------------

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::vector<Json> load_jsonl(const std::string& path) {
  std::vector<Json> docs;
  std::size_t n = 0;
  for (const std::string& line : read_lines(path)) {
    ++n;
    try {
      docs.push_back(Json::parse(line));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(n) + ": " +
                               e.what());
    }
  }
  return docs;
}

// Renders a scalparc-timeseries-v1 document as a textual timeline: one row
// per epoch with the busiest counter deltas and every histogram's p99.
void print_timeline(const std::vector<Json>& epochs, std::ostream& out) {
  out << "\ntimeline (" << epochs.size() << " epoch(s)):\n";
  char line[512];
  for (const Json& record : epochs) {
    const double t_s = record.at("t_s").as_double();
    const std::int64_t epoch = record.at("epoch").as_int();
    // Top 3 counter deltas by magnitude.
    std::vector<std::pair<double, std::string>> deltas;
    for (const auto& [name, entry] : record.at("counters").as_object()) {
      const double delta = entry.at("delta").as_double();
      if (delta != 0.0) deltas.emplace_back(delta, name);
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::string activity;
    const std::size_t shown = std::min<std::size_t>(3, deltas.size());
    for (std::size_t i = 0; i < shown; ++i) {
      char cell[96];
      std::snprintf(cell, sizeof(cell), "%s%s +%.6g", i ? ", " : "",
                    deltas[i].second.c_str(), deltas[i].first);
      activity += cell;
    }
    if (activity.empty()) activity = "(idle)";
    std::string tails;
    for (const auto& [name, entry] : record.at("histograms").as_object()) {
      const double delta_count = entry.at("delta_count").as_double();
      if (delta_count <= 0.0) continue;
      char cell[96];
      std::snprintf(cell, sizeof(cell), "%s%s p99=%.4g", tails.empty() ? "" : ", ",
                    name.c_str(), entry.at("p99").as_double());
      tails += cell;
    }
    std::snprintf(line, sizeof(line), "  epoch %4lld  t=%9.3fs  %s%s%s\n",
                  static_cast<long long>(epoch), t_s, activity.c_str(),
                  tails.empty() ? "" : "  |  ", tails.c_str());
    out << line;
  }
}

// CI checks for a scalparc-timeseries-v1 document: monotone epochs and
// clocks, monotone counter totals with self-consistent deltas, and (when
// the final registry is available) last-epoch totals that never exceed it.
int validate_timeseries(
    const std::vector<Json>& epochs,
    const std::optional<scalparc::mp::MetricsSnapshot>& final_metrics,
    std::ostream& out) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    out << "FAIL: timeseries: " << what << "\n";
    ++failures;
  };
  if (epochs.empty()) {
    fail("document holds no epoch records");
    return failures;
  }
  std::int64_t prev_epoch = -1;
  double prev_t = -1.0;
  std::map<std::string, double> prev_totals;
  std::map<std::string, double> prev_counts;
  for (const Json& record : epochs) {
    try {
      if (record.at("format").as_string() != "scalparc-timeseries-v1") {
        fail("record has unexpected format tag");
        continue;
      }
      const std::int64_t epoch = record.at("epoch").as_int();
      const double t_s = record.at("t_s").as_double();
      if (epoch <= prev_epoch) {
        fail("epoch " + std::to_string(epoch) + " does not increase on " +
             std::to_string(prev_epoch));
      }
      if (t_s < prev_t) {
        fail("t_s moves backwards at epoch " + std::to_string(epoch));
      }
      prev_epoch = epoch;
      prev_t = t_s;
      for (const auto& [name, entry] : record.at("counters").as_object()) {
        const double total = entry.at("total").as_double();
        const double delta = entry.at("delta").as_double();
        auto [it, inserted] = prev_totals.emplace(name, 0.0);
        if (total + 1e-9 < it->second) {
          fail("counter '" + name + "' total decreases at epoch " +
               std::to_string(epoch));
        }
        if (std::fabs(delta - (total - it->second)) >
            1e-6 * std::max(1.0, std::fabs(total))) {
          fail("counter '" + name + "' delta disagrees with totals at epoch " +
               std::to_string(epoch));
        }
        it->second = total;
      }
      for (const auto& [name, entry] : record.at("histograms").as_object()) {
        const double count = entry.at("count").as_double();
        const double delta = entry.at("delta_count").as_double();
        auto [it, inserted] = prev_counts.emplace(name, 0.0);
        if (count + 1e-9 < it->second) {
          fail("histogram '" + name + "' count decreases at epoch " +
               std::to_string(epoch));
        }
        if (std::fabs(delta - (count - it->second)) > 1e-6) {
          fail("histogram '" + name +
               "' delta_count disagrees with counts at epoch " +
               std::to_string(epoch));
        }
        it->second = count;
      }
    } catch (const std::exception& e) {
      fail(std::string("malformed epoch record: ") + e.what());
    }
  }
  // Delta-consistency with the final registry: live totals are published
  // mid-run, so they may lag the end-of-run merge but can never exceed it.
  if (final_metrics.has_value()) {
    for (const auto& [name, total] : prev_totals) {
      const scalparc::mp::Metric* metric = final_metrics->find(name);
      if (metric == nullptr) {
        // slo.* lives only in the exporter epochs unless serve merged it
        // into the final registry; anything else must be in the registry.
        if (name.rfind("slo.", 0) != 0) {
          fail("counter '" + name + "' absent from the final registry");
        }
        continue;
      }
      if (total > metric->value * (1.0 + 1e-9) + 1e-9) {
        char msg[192];
        std::snprintf(msg, sizeof(msg),
                      "counter '%s' last live total %.6g exceeds the final "
                      "registry value %.6g",
                      name.c_str(), total, metric->value);
        fail(msg);
      }
    }
  }
  return failures;
}

// CI checks for a Prometheus text-exposition snapshot: every sample line
// parses as `name[{labels}] value`, carries the scalparc_ prefix, and is
// covered by a preceding # TYPE declaration.
int validate_exposition(const std::string& path, std::ostream& out) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    out << "FAIL: exposition: " << what << "\n";
    ++failures;
  };
  std::vector<std::string> lines;
  try {
    lines = read_lines(path);
  } catch (const std::exception& e) {
    fail(e.what());
    return failures;
  }
  if (lines.empty()) {
    fail("document is empty");
    return failures;
  }
  std::set<std::string> declared;
  std::size_t samples = 0;
  std::size_t n = 0;
  for (const std::string& line : lines) {
    ++n;
    const std::string where = " (line " + std::to_string(n) + ")";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream in(line.substr(7));
      std::string name, kind;
      in >> name >> kind;
      if (name.empty() ||
          (kind != "counter" && kind != "gauge" && kind != "summary")) {
        fail("malformed TYPE declaration" + where);
        continue;
      }
      declared.insert(name);
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of(" {");
    if (name_end == std::string::npos) {
      fail("malformed sample line" + where);
      continue;
    }
    const std::string name = line.substr(0, name_end);
    if (name.rfind("scalparc_", 0) != 0) {
      fail("sample '" + name + "' lacks the scalparc_ prefix" + where);
    }
    std::size_t value_begin = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        fail("unterminated label set" + where);
        continue;
      }
      value_begin = close + 1;
    }
    const std::string value = line.substr(value_begin);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || end == nullptr || *end != '\0') {
      fail("sample value does not parse as a number" + where);
    }
    // A summary's _sum/_count samples are declared under the base name.
    std::string base = name;
    for (const char* suffix : {"_sum", "_count"}) {
      const std::string s(suffix);
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          declared.count(base.substr(0, base.size() - s.size()))) {
        base = base.substr(0, base.size() - s.size());
        break;
      }
    }
    if (!declared.count(base)) {
      fail("sample '" + name + "' has no preceding TYPE declaration" + where);
    }
    ++samples;
  }
  if (samples == 0) fail("document declares types but holds no samples");
  return failures;
}

// CI checks for a scalparc-flight-v1 dump: well-formed header and events,
// nondecreasing timestamps, and event counts cross-checked against the
// recovery.* / predict.swaps / health.* counters of the final registry.
int validate_flight(
    const std::vector<Json>& lines,
    const std::optional<scalparc::mp::MetricsSnapshot>& final_metrics,
    std::ostream& out) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    out << "FAIL: flight: " << what << "\n";
    ++failures;
  };
  if (lines.empty()) {
    fail("document is empty");
    return failures;
  }
  double dropped = 0.0;
  try {
    const Json& header = lines.front();
    if (header.at("format").as_string() != "scalparc-flight-v1") {
      fail("header has unexpected format tag");
    }
    if (header.at("capacity").as_double() < 1.0) {
      fail("header capacity must be >= 1");
    }
    dropped = header.at("dropped").as_double();
    if (dropped < 0.0) fail("header dropped count is negative");
    const double announced = header.at("events").as_double();
    if (announced != static_cast<double>(lines.size() - 1)) {
      fail("header announces " + std::to_string(announced) +
           " event(s) but the document holds " +
           std::to_string(lines.size() - 1));
    }
  } catch (const std::exception& e) {
    fail(std::string("malformed header: ") + e.what());
    return failures;
  }
  double prev_t = -1.0;
  std::map<std::string, double> by_kind;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    try {
      const Json& event = lines[i];
      const double t_s = event.at("t_s").as_double();
      const std::string& kind = event.at("kind").as_string();
      (void)event.at("rank").as_int();
      (void)event.at("detail").as_string();
      if (kind.empty()) fail("event " + std::to_string(i) + " has no kind");
      if (t_s < prev_t) {
        fail("event " + std::to_string(i) +
             " timestamp moves backwards (ring dump must be "
             "oldest-to-newest)");
      }
      prev_t = t_s;
      by_kind[kind] += 1.0;
    } catch (const std::exception& e) {
      fail("malformed event " + std::to_string(i) + ": " + e.what());
    }
  }
  // Counter cross-checks. Every recorded event of these kinds bumps (or is
  // bumped alongside) a registry counter, so with an unsaturated ring the
  // counts must agree exactly; once the ring dropped events the document
  // may only undercount.
  if (final_metrics.has_value()) {
    const auto cross_check = [&](const std::string& kind,
                                 const std::string& counter, double counted) {
      const double expected = final_metrics->value(counter, 0.0);
      if (counted > expected) {
        char msg[192];
        std::snprintf(msg, sizeof(msg),
                      "%.0f '%s' event(s) but the registry counter %s says "
                      "%.0f",
                      counted, kind.c_str(), counter.c_str(), expected);
        fail(msg);
      } else if (dropped == 0.0 && counted < expected) {
        char msg[192];
        std::snprintf(msg, sizeof(msg),
                      "registry counter %s says %.0f but only %.0f '%s' "
                      "event(s) recorded with zero drops",
                      counter.c_str(), expected, counted, kind.c_str());
        fail(msg);
      }
    };
    cross_check("model_swap", "predict.swaps", by_kind["model_swap"]);
    cross_check("straggler", "health.stragglers_detected",
                by_kind["straggler"]);
    // Non-terminal recovery events pair 1:1 with survived failures.
    double recoveries = 0.0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const Json& event = lines[i];
      const Json* kind = event.find("kind");
      const Json* detail = event.find("detail");
      if (kind != nullptr && kind->is_string() &&
          kind->as_string() == "recovery" && detail != nullptr &&
          detail->is_string() &&
          detail->as_string().rfind("terminal:", 0) != 0) {
        recoveries += 1.0;
      }
    }
    cross_check("recovery", "recovery.recoveries", recoveries);
  }
  return failures;
}

std::optional<scalparc::mp::MetricsSnapshot> load_metrics_doc(
    const std::string& path) {
  if (path.empty()) return std::nullopt;
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    return scalparc::mp::MetricsSnapshot::from_json(doc.at("metrics"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const scalparc::util::CliArgs args(argc, const_cast<const char* const*>(argv));
  const std::string metrics_path = args.get_string("metrics", "");
  const std::string timeseries_path = args.get_string("timeseries", "");
  const std::string expose_path = args.get_string("expose", "");
  const std::string flight_path = args.get_string("flight", "");
  const int top_k = static_cast<int>(args.get_int("top", 5));
  const bool validate_mode = args.get_bool("validate", false);

  // The trace positional is optional once any telemetry document is named:
  // `--validate --timeseries F` checks just that document.
  const bool has_docs = !metrics_path.empty() || !timeseries_path.empty() ||
                        !expose_path.empty() || !flight_path.empty();
  if (args.positional().empty() && !has_docs) {
    std::cerr << "usage: scalparc-trace-report [TRACE.json] [--top K] "
                 "[--metrics FILE] [--critical-path] [--timeseries F] "
                 "[--timeline] [--expose F] [--flight F] [--validate]\n";
    return 2;
  }

  try {
    int failures = 0;
    if (!args.positional().empty()) {
      const std::string trace_path = args.positional().front();
      const Trace trace = load_trace(trace_path);
      std::cout << "trace: " << trace_path << "\n";
      print_report(trace, top_k, std::cout);
      if (args.get_bool("critical-path", false)) {
        print_critical_path(trace, std::cout);
      }
      if (validate_mode) failures += validate(trace, metrics_path, std::cout);
    }
    if (!metrics_path.empty()) print_metrics(metrics_path, std::cout);
    // The final registry (when given) anchors the cross-document checks.
    const std::optional<scalparc::mp::MetricsSnapshot> final_metrics =
        load_metrics_doc(metrics_path);
    if (!timeseries_path.empty()) {
      const std::vector<Json> epochs = load_jsonl(timeseries_path);
      std::cout << "timeseries: " << timeseries_path << " (" << epochs.size()
                << " epoch(s))\n";
      if (args.get_bool("timeline", false)) print_timeline(epochs, std::cout);
      if (validate_mode) {
        failures += validate_timeseries(epochs, final_metrics, std::cout);
      }
    }
    if (!expose_path.empty()) {
      std::cout << "exposition: " << expose_path << "\n";
      if (validate_mode) failures += validate_exposition(expose_path, std::cout);
    }
    if (!flight_path.empty()) {
      const std::vector<Json> lines = load_jsonl(flight_path);
      std::cout << "flight: " << flight_path << " ("
                << (lines.empty() ? 0 : lines.size() - 1) << " event(s))\n";
      if (validate_mode) {
        failures += validate_flight(lines, final_metrics, std::cout);
      }
    }
    if (validate_mode) {
      if (failures > 0) {
        std::cout << "validation: " << failures << " failure(s)\n";
        return 1;
      }
      std::cout << "validation: OK\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
