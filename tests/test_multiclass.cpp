// Multi-class coverage: the Gaussian-mixture generator, induction with more
// than two classes (count matrices, gini/entropy, multi-way prediction),
// distributed evaluation, and the extended label functions F8-F10.
#include <gtest/gtest.h>

#include <set>

#include "core/predict.hpp"
#include "core/pruning.hpp"
#include "core/scalparc.hpp"
#include "data/gaussian.hpp"
#include "data/synthetic.hpp"
#include "sort/partition_util.hpp"
#include "sprint/serial_sprint.hpp"

namespace scalparc {
namespace {

using data::GaussianConfig;
using data::GaussianGenerator;

const mp::CostModel kZero = mp::CostModel::zero();

// ---------------------------------------------------------------------------
// GaussianGenerator
// ---------------------------------------------------------------------------

TEST(Gaussian, SchemaMatchesConfig) {
  GaussianGenerator g(GaussianConfig{.num_classes = 5,
                                     .num_continuous = 3,
                                     .num_categorical = 2,
                                     .categorical_cardinality = 6});
  EXPECT_EQ(g.schema().num_classes(), 5);
  EXPECT_EQ(g.schema().num_continuous(), 3);
  EXPECT_EQ(g.schema().num_categorical(), 2);
  EXPECT_EQ(g.schema().attribute(3).cardinality, 6);
}

TEST(Gaussian, DeterministicAndBlockConsistent) {
  GaussianGenerator g(GaussianConfig{.seed = 9});
  const data::Dataset whole = g.generate(0, 60);
  const data::Dataset tail = g.generate(30, 30);
  for (std::size_t row = 0; row < 30; ++row) {
    EXPECT_DOUBLE_EQ(whole.continuous_value(0, 30 + row),
                     tail.continuous_value(0, row));
    EXPECT_EQ(whole.label(30 + row), tail.label(row));
  }
}

TEST(Gaussian, AllClassesOccur) {
  GaussianGenerator g(GaussianConfig{.seed = 4, .num_classes = 4});
  std::set<std::int32_t> seen;
  const data::Dataset d = g.generate(0, 400);
  for (std::size_t row = 0; row < d.num_records(); ++row) seen.insert(d.label(row));
  EXPECT_EQ(seen.size(), 4u);
  d.validate();  // categorical codes in range
}

TEST(Gaussian, RejectsBadConfig) {
  EXPECT_THROW(GaussianGenerator(GaussianConfig{.num_classes = 1}),
               std::invalid_argument);
  EXPECT_THROW(GaussianGenerator(GaussianConfig{.num_continuous = 0}),
               std::invalid_argument);
  EXPECT_THROW(GaussianGenerator(GaussianConfig{.num_categorical = 1,
                                                .categorical_cardinality = 1}),
               std::invalid_argument);
}

TEST(Gaussian, SeparatedClassesAreLearnable) {
  GaussianGenerator g(GaussianConfig{.seed = 6, .num_classes = 3,
                                     .separation = 5.0});
  const data::Dataset training = g.generate(0, 900);
  const data::Dataset holdout = g.generate(100000, 600);
  const auto report = core::ScalParC::fit(training, 3);
  EXPECT_GT(report.tree.accuracy(holdout), 0.9);
}

// ---------------------------------------------------------------------------
// Multi-class induction
// ---------------------------------------------------------------------------

class MulticlassInduction : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Classes, MulticlassInduction,
                         ::testing::Values(3, 4, 6));

TEST_P(MulticlassInduction, ProcessorCountInvariance) {
  const int classes = GetParam();
  GaussianGenerator g(GaussianConfig{.seed = 31, .num_classes = classes});
  const data::Dataset training = g.generate(0, 300);
  core::InductionControls controls;
  controls.options.max_depth = 8;
  const core::DecisionTree reference =
      core::ScalParC::fit(training, 1, controls, kZero).tree;
  for (const int p : {2, 5}) {
    const core::DecisionTree tree =
        core::ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(reference.same_structure(tree)) << "p=" << p;
  }
}

TEST_P(MulticlassInduction, MatchesSerialSprint) {
  const int classes = GetParam();
  GaussianGenerator g(GaussianConfig{.seed = 37, .num_classes = classes});
  const data::Dataset training = g.generate(0, 250);
  core::InductionControls controls;
  controls.options.max_depth = 8;
  const core::DecisionTree oracle =
      sprint::fit_serial_sprint(training, controls.options);
  const core::DecisionTree tree =
      core::ScalParC::fit(training, 4, controls, kZero).tree;
  EXPECT_TRUE(oracle.same_structure(tree));
}

TEST_P(MulticlassInduction, EntropyCriterionWorks) {
  const int classes = GetParam();
  GaussianGenerator g(GaussianConfig{.seed = 41, .num_classes = classes,
                                     .separation = 5.0});
  const data::Dataset training = g.generate(0, 400);
  core::InductionControls controls;
  controls.options.criterion = core::SplitCriterion::kEntropy;
  const auto report = core::ScalParC::fit(training, 3, controls);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(training), 1.0);
}

TEST_P(MulticlassInduction, PruningPreservesValidity) {
  const int classes = GetParam();
  GaussianGenerator g(GaussianConfig{.seed = 43, .num_classes = classes,
                                     .separation = 1.5});  // overlapping blobs
  const data::Dataset training = g.generate(0, 400);
  auto report = core::ScalParC::fit(training, 2);
  core::mdl_prune(report.tree);
  for (std::size_t row = 0; row < training.num_records(); ++row) {
    const std::int32_t y = report.tree.predict(training, row);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, classes);
  }
}

// ---------------------------------------------------------------------------
// Distributed evaluation
// ---------------------------------------------------------------------------

class DistributedEval : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, DistributedEval, ::testing::Values(1, 2, 5));

TEST_P(DistributedEval, MatchesSerialEvaluation) {
  const int p = GetParam();
  GaussianGenerator g(GaussianConfig{.seed = 47, .num_classes = 3});
  const data::Dataset training = g.generate(0, 300);
  const data::Dataset holdout = g.generate(100000, 211);
  const core::DecisionTree tree = core::ScalParC::fit(training, 2).tree;
  const core::ConfusionMatrix serial = core::evaluate(tree, holdout);

  const auto sizes = sort::equal_partition_sizes(holdout.num_records(), p);
  const auto offsets = sort::offsets_from_sizes(sizes);
  std::vector<core::ConfusionMatrix> results(static_cast<std::size_t>(p),
                                             core::ConfusionMatrix(3));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset block = holdout.slice(offsets[r], offsets[r + 1]);
    results[r] = core::evaluate_distributed(comm, tree, block);
  });
  for (const auto& matrix : results) {
    EXPECT_EQ(matrix.total(), serial.total());
    EXPECT_EQ(matrix.correct(), serial.correct());
    for (std::int32_t a = 0; a < 3; ++a) {
      for (std::int32_t b = 0; b < 3; ++b) {
        EXPECT_EQ(matrix.at(a, b), serial.at(a, b));
      }
    }
  }
}

TEST(DistributedEval, EmptyBlocksAreFine) {
  GaussianGenerator g(GaussianConfig{.seed = 47});
  const data::Dataset training = g.generate(0, 200);
  const core::DecisionTree tree = core::ScalParC::fit(training, 1).tree;
  std::vector<std::int64_t> totals(4, -1);
  mp::run_ranks(4, kZero, [&](mp::Comm& comm) {
    // Only rank 0 holds evaluation data.
    const data::Dataset block = comm.is_root() ? g.generate(5000, 50)
                                               : data::Dataset(g.schema());
    const auto matrix = core::evaluate_distributed(comm, tree, block);
    totals[static_cast<std::size_t>(comm.rank())] = matrix.total();
  });
  for (const std::int64_t total : totals) EXPECT_EQ(total, 50);
}

TEST(DistributedEval, FromCellsValidates) {
  const std::vector<std::int64_t> bad{1, -2, 3, 4};
  EXPECT_THROW((void)core::ConfusionMatrix::from_cells(2, bad),
               std::invalid_argument);
  const std::vector<std::int64_t> wrong_size{1, 2, 3};
  EXPECT_THROW((void)core::ConfusionMatrix::from_cells(2, wrong_size),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Label functions F8-F10
// ---------------------------------------------------------------------------

TEST(QuestExtended, F8UsesEducationPenalty) {
  data::QuestRecord r;
  r.salary = 60e3;
  r.commission = 0;
  r.elevel = 0;
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF8), 1);  // 40k - 20k > 0
  r.elevel = 4;
  // 40k - 20k (education) - 20k = 0, not strictly positive -> group B.
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF8), 0);
  r.salary = 59e3;
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF8), 0);
}

TEST(QuestExtended, F9AddsLoan) {
  data::QuestRecord r;
  r.salary = 90e3;
  r.commission = 0;
  r.elevel = 2;
  r.loan = 0;
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF9), 1);
  r.loan = 500e3;  // -100k swing
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF9), 0);
}

TEST(QuestExtended, F10EquityNeedsTwentyYears) {
  data::QuestRecord r;
  r.salary = 20e3;
  r.commission = 0;
  r.elevel = 0;
  r.hvalue = 500e3;
  r.hyears = 10.0;  // no equity yet: 13.3k - 50k < 0
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF10), 0);
  r.hyears = 30.0;  // equity = 0.1*500k*10 = 500k -> +100k income
  EXPECT_EQ(data::quest_label(r, data::LabelFunction::kF10), 1);
}

TEST(QuestExtended, ParseAndBalance) {
  EXPECT_EQ(data::parse_label_function("F10"), data::LabelFunction::kF10);
  for (const auto f : {data::LabelFunction::kF8, data::LabelFunction::kF9,
                       data::LabelFunction::kF10}) {
    data::GeneratorConfig config;
    config.seed = 51;
    config.function = f;
    config.num_attributes = 9;
    const data::QuestGenerator g(config);
    int ones = 0;
    constexpr int kN = 2000;
    for (std::uint64_t rid = 0; rid < kN; ++rid) ones += g.label(rid);
    EXPECT_GT(ones, kN / 50) << static_cast<int>(f);
    EXPECT_LT(ones, kN - kN / 50) << static_cast<int>(f);
  }
}

TEST(QuestExtended, F8ToF10AreLearnable) {
  for (const auto f : {data::LabelFunction::kF8, data::LabelFunction::kF9,
                       data::LabelFunction::kF10}) {
    data::GeneratorConfig config;
    config.seed = 53;
    config.function = f;
    config.num_attributes = 9;
    const data::QuestGenerator g(config);
    const auto report = core::ScalParC::fit_generated(g, 3000, 3);
    const double acc = core::holdout_accuracy(report.tree, g, 500000, 1500);
    EXPECT_GT(acc, 0.85) << static_cast<int>(f);
  }
}

}  // namespace
}  // namespace scalparc
