// Differential property suite for the SoA data plane: the columnar
// attribute lists, the incremental gini kernel, the flat hash table, and the
// arena must be *observationally invisible* — byte-identical trees,
// byte-identical checkpoint files, cross-layout resume — with the AoS
// entry-list path kept alive as the oracle (InductionOptions::layout).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/chained_hash.hpp"
#include "core/count_matrix.hpp"
#include "core/flat_hash.hpp"
#include "core/gini.hpp"
#include "core/scalparc.hpp"
#include "core/split_finder.hpp"
#include "core/tree_io.hpp"
#include "data/attribute_list.hpp"
#include "data/synthetic.hpp"
#include "mp/fault.hpp"
#include "mp/runtime.hpp"
#include "sort/partition_util.hpp"
#include "sort/rebalance.hpp"
#include "sort/sample_sort.hpp"
#include "util/arena.hpp"

namespace scalparc {
namespace {

namespace fs = std::filesystem;

using core::DataLayout;
using core::DecisionTree;
using core::InductionControls;
using core::ScalParC;
using core::SplitCandidate;

const mp::CostModel kZero = mp::CostModel::zero();

std::string tree_bytes(const DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

// Mixed continuous + categorical workload (9 Quest attributes) so both list
// kinds and both split kinds go through the layout under test.
data::Dataset make_mixed_training(std::uint64_t records, std::uint64_t seed = 11) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF6;
  config.num_attributes = 9;
  config.label_noise = 0.05;
  return data::QuestGenerator(config).generate(0, records);
}

// Continuous-heavy workload matching the fault suite (deep enough trees for
// mid-run checkpoints).
data::Dataset make_deep_training(std::uint64_t records, std::uint64_t seed = 3) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF2;
  config.num_attributes = 7;
  return data::QuestGenerator(config).generate(0, records);
}

InductionControls layout_controls(DataLayout layout) {
  InductionControls controls;
  controls.options.layout = layout;
  return controls;
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path((fs::temp_directory_path() /
              (stem + "_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++)))
                 .string()) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter_ = 0;
};

// All regular files under `root`, keyed by path relative to root.
std::map<std::string, std::string> file_map(const std::string& root) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    out[fs::relative(entry.path(), root).string()] = buffer.str();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trees are byte-identical across layouts
// ---------------------------------------------------------------------------

TEST(LayoutDifferential, TreeByteIdenticalAcrossLayouts) {
  const data::Dataset training = make_mixed_training(1200);
  for (const int p : {1, 2, 4, 8}) {
    const core::FitReport soa =
        ScalParC::fit(training, p, layout_controls(DataLayout::kSoA), kZero);
    const core::FitReport aos =
        ScalParC::fit(training, p, layout_controls(DataLayout::kAoS), kZero);
    EXPECT_EQ(tree_bytes(soa.tree), tree_bytes(aos.tree)) << "p=" << p;
    EXPECT_EQ(soa.tree.accuracy(training), aos.tree.accuracy(training))
        << "p=" << p;
  }
}

TEST(LayoutDifferential, TreeByteIdenticalWithSubsetSplitsAndEntropy) {
  // Entropy has no O(1) sufficient statistic, so the incremental scanner's
  // fallback path and the subset split's incremental histograms are both on
  // trial here.
  const data::Dataset training = make_mixed_training(900, /*seed=*/4);
  for (const int p : {1, 4}) {
    InductionControls soa = layout_controls(DataLayout::kSoA);
    soa.options.categorical_split = core::CategoricalSplit::kBinarySubset;
    soa.options.criterion = core::SplitCriterion::kEntropy;
    InductionControls aos = soa;
    aos.options.layout = DataLayout::kAoS;
    EXPECT_EQ(tree_bytes(ScalParC::fit(training, p, soa, kZero).tree),
              tree_bytes(ScalParC::fit(training, p, aos, kZero).tree))
        << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Checkpoints: identical files, cross-layout resume
// ---------------------------------------------------------------------------

TEST(LayoutDifferential, CheckpointFilesByteIdenticalAcrossLayouts) {
  // Sections are always written as AoS entries regardless of the in-memory
  // layout, so the on-disk artifacts must match byte for byte.
  const data::Dataset training = make_deep_training(2000);
  TempDir soa_dir("scalparc_layout_soa");
  TempDir aos_dir("scalparc_layout_aos");
  InductionControls soa = layout_controls(DataLayout::kSoA);
  soa.options.max_depth = 5;
  soa.checkpoint.directory = soa_dir.path;
  InductionControls aos = soa;
  aos.options.layout = DataLayout::kAoS;
  aos.checkpoint.directory = aos_dir.path;

  const std::string soa_tree = tree_bytes(ScalParC::fit(training, 2, soa, kZero).tree);
  const std::string aos_tree = tree_bytes(ScalParC::fit(training, 2, aos, kZero).tree);
  EXPECT_EQ(soa_tree, aos_tree);

  const auto soa_files = file_map(soa_dir.path);
  const auto aos_files = file_map(aos_dir.path);
  ASSERT_FALSE(soa_files.empty());
  ASSERT_EQ(soa_files.size(), aos_files.size());
  for (const auto& [name, bytes] : soa_files) {
    const auto it = aos_files.find(name);
    ASSERT_NE(it, aos_files.end()) << name << " missing from AoS checkpoint";
    EXPECT_EQ(bytes, it->second) << name << " differs across layouts";
  }
}

TEST(LayoutDifferential, EachLayoutResumesTheOthersCheckpoint) {
  // The layout is deliberately excluded from the checkpoint fingerprint:
  // a checkpoint written under either layout must resume under the other
  // and still reproduce the clean tree.
  const data::Dataset training = make_deep_training(2000);
  InductionControls base;
  base.options.max_depth = 5;
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 4, base, kZero).tree);

  for (const auto& [writer, resumer] :
       {std::pair{DataLayout::kAoS, DataLayout::kSoA},
        std::pair{DataLayout::kSoA, DataLayout::kAoS}}) {
    TempDir dir("scalparc_layout_xresume");
    InductionControls write = base;
    write.options.layout = writer;
    write.checkpoint.directory = dir.path;
    EXPECT_EQ(tree_bytes(ScalParC::fit(training, 4, write, kZero).tree),
              expected);

    InductionControls resume = base;
    resume.options.layout = resumer;
    resume.checkpoint.directory = dir.path;
    const core::FitReport report =
        ScalParC::resume_from_checkpoint(training, 4, resume, kZero);
    EXPECT_EQ(tree_bytes(report.tree), expected)
        << "writer=" << static_cast<int>(writer)
        << " resumer=" << static_cast<int>(resumer);
  }
}

TEST(LayoutDifferential, KillAndResumeUnderSoAMatchesAoSTree) {
  const data::Dataset training = make_deep_training(4000);
  InductionControls aos = layout_controls(DataLayout::kAoS);
  aos.options.max_depth = 6;
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 4, aos, kZero).tree);

  TempDir dir("scalparc_layout_kill");
  mp::FaultPlan plan;
  plan.parse("kill:r=1,level=2");
  mp::RunOptions options;
  options.fault_plan = &plan;
  InductionControls soa = layout_controls(DataLayout::kSoA);
  soa.options.max_depth = 6;
  soa.checkpoint.directory = dir.path;
  const core::RecoveryReport report =
      ScalParC::fit_with_recovery(training, 4, soa, kZero, options);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].resumed_level, 2);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// ---------------------------------------------------------------------------
// Impurity scanners: bitwise equality
// ---------------------------------------------------------------------------

TEST(ScannerDifferential, RecomputeAndIncrementalBitwiseIdentical) {
  std::mt19937 rng(17);
  for (const int c : {2, 3, 5}) {
    for (const auto criterion :
         {core::SplitCriterion::kGini, core::SplitCriterion::kEntropy}) {
      std::vector<std::int64_t> totals(static_cast<std::size_t>(c), 0);
      std::vector<std::int32_t> stream;
      std::uniform_int_distribution<int> class_of(0, c - 1);
      for (int i = 0; i < 500; ++i) {
        const int cls = class_of(rng);
        ++totals[static_cast<std::size_t>(cls)];
        stream.push_back(cls);
      }
      const std::vector<std::int64_t> zeros(static_cast<std::size_t>(c), 0);
      core::BinaryImpurityScanner recompute(totals, zeros, criterion);
      core::IncrementalImpurityScanner incremental(totals, zeros, criterion);
      EXPECT_EQ(recompute.current_impurity(), incremental.current_impurity());
      for (const std::int32_t cls : stream) {
        recompute.advance(cls);
        incremental.advance(cls);
        // Bitwise-equal doubles (infinity at the boundaries included).
        EXPECT_EQ(recompute.current_impurity(), incremental.current_impurity())
            << "c=" << c << " criterion=" << static_cast<int>(criterion);
      }
      EXPECT_EQ(recompute.below_total(), incremental.below_total());
    }
  }
}

TEST(ScannerDifferential, AdvanceRunMatchesRepeatedAdvance) {
  const std::vector<std::int64_t> totals = {40, 25, 35};
  const std::vector<std::int64_t> zeros = {0, 0, 0};
  core::IncrementalImpurityScanner by_run(totals, zeros);
  core::IncrementalImpurityScanner by_one(totals, zeros);
  const std::vector<std::pair<std::int32_t, std::int64_t>> runs = {
      {0, 7}, {2, 11}, {1, 1}, {0, 13}, {1, 24}, {2, 24}};
  for (const auto& [cls, count] : runs) {
    by_run.advance_run(cls, count);
    for (std::int64_t k = 0; k < count; ++k) by_one.advance(cls);
    EXPECT_EQ(by_run.current_impurity(), by_one.current_impurity());
    EXPECT_EQ(by_run.below_total(), by_one.below_total());
  }
}

// ---------------------------------------------------------------------------
// Columnar scan kernel vs the entry-walk oracle
// ---------------------------------------------------------------------------

TEST(ScanKernelDifferential, ColumnsKernelMatchesEntryScan) {
  std::mt19937 rng(23);
  for (const int c : {2, 4}) {  // 2 exercises the vectorized counting path
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 200 + trial * 17;
      std::uniform_int_distribution<int> value_of(0, 39);
      std::uniform_int_distribution<int> class_of(0, c - 1);
      std::vector<data::ContinuousEntry> entries(n);
      for (std::size_t i = 0; i < n; ++i) {
        entries[i].value = static_cast<double>(value_of(rng)) * 0.25;
        entries[i].rid = static_cast<std::int64_t>(i);
        entries[i].cls = class_of(rng);
      }
      std::sort(entries.begin(), entries.end(), data::ContinuousEntryLess{});
      const data::ContinuousColumns cols = data::columns_from_entries(entries);
      std::vector<std::int64_t> totals(static_cast<std::size_t>(c), 0);
      for (const auto& e : entries) ++totals[static_cast<std::size_t>(e.cls)];

      // Cut the list into a random FindSplitI-style fragment and scan it
      // with both kernels, seeded with the same prefix state.
      std::uniform_int_distribution<std::size_t> cut(0, n);
      std::size_t begin = cut(rng);
      std::size_t end = cut(rng);
      if (begin > end) std::swap(begin, end);
      std::vector<std::int64_t> below(static_cast<std::size_t>(c), 0);
      for (std::size_t i = 0; i < begin; ++i) {
        ++below[static_cast<std::size_t>(entries[i].cls)];
      }
      const bool has_prev = begin > 0;
      const double prev_value = has_prev ? entries[begin - 1].value : 0.0;

      SplitCandidate best_entry;
      core::BinaryImpurityScanner recompute(totals, below);
      const std::size_t work_entry = core::scan_continuous_segment(
          std::span<const data::ContinuousEntry>(entries.data() + begin,
                                                 end - begin),
          recompute, has_prev, prev_value, /*attribute=*/3, best_entry);

      SplitCandidate best_cols;
      core::IncrementalImpurityScanner incremental(totals, below);
      const std::size_t work_cols = core::scan_continuous_columns(
          cols, begin, end, incremental, has_prev, prev_value, /*attribute=*/3,
          best_cols);

      EXPECT_EQ(work_entry, work_cols);
      EXPECT_EQ(best_entry.gini, best_cols.gini) << "c=" << c;
      EXPECT_EQ(best_entry.attribute, best_cols.attribute);
      EXPECT_EQ(best_entry.kind, best_cols.kind);
      EXPECT_EQ(best_entry.threshold, best_cols.threshold);
      EXPECT_EQ(recompute.below_total(), incremental.below_total());
    }
  }
}

// ---------------------------------------------------------------------------
// Subset split: incremental histograms vs rebuild-from-scratch oracle
// ---------------------------------------------------------------------------

// The pre-optimization algorithm: greedy forward selection where every
// candidate subset's left/right histograms are rebuilt from the matrix
// (O(V^2*C) per round).
SplitCandidate subset_oracle(const core::CountMatrix& matrix,
                             std::int32_t attribute,
                             core::SplitCriterion criterion) {
  const int c = matrix.cols();
  const auto subset_impurity = [&](std::uint64_t subset) {
    std::vector<std::int64_t> left(static_cast<std::size_t>(c), 0);
    std::vector<std::int64_t> right(static_cast<std::size_t>(c), 0);
    std::int64_t nl = 0;
    std::int64_t nr = 0;
    for (int v = 0; v < matrix.rows(); ++v) {
      const bool in_left = (subset >> v) & 1u;
      for (int j = 0; j < c; ++j) {
        ((in_left ? left : right))[static_cast<std::size_t>(j)] += matrix.at(v, j);
      }
      (in_left ? nl : nr) += matrix.row_total(v);
    }
    if (nl == 0 || nr == 0) return std::numeric_limits<double>::infinity();
    const double n = static_cast<double>(nl + nr);
    return (static_cast<double>(nl) / n) *
               core::impurity_of_counts(left, criterion) +
           (static_cast<double>(nr) / n) *
               core::impurity_of_counts(right, criterion);
  };

  SplitCandidate candidate;
  std::uint64_t subset = 0;
  double best_gini = std::numeric_limits<double>::infinity();
  std::uint64_t best_subset = 0;
  for (;;) {
    double round_best = std::numeric_limits<double>::infinity();
    int round_value = -1;
    for (int v = 0; v < matrix.rows(); ++v) {
      if ((subset >> v) & 1u) continue;
      if (matrix.row_total(v) == 0) continue;
      const double g = subset_impurity(subset | (std::uint64_t{1} << v));
      if (g < round_best) {
        round_best = g;
        round_value = v;
      }
    }
    if (round_value < 0) break;
    subset |= std::uint64_t{1} << round_value;
    if (round_best < best_gini) {
      best_gini = round_best;
      best_subset = subset;
    }
  }
  if (best_gini == std::numeric_limits<double>::infinity()) return candidate;
  candidate.gini = best_gini;
  candidate.attribute = attribute;
  candidate.kind = core::SplitKind::kCategoricalSubset;
  candidate.subset = best_subset;
  return candidate;
}

TEST(SubsetSplitDifferential, IncrementalGreedyMatchesRebuildOracle) {
  std::mt19937 rng(31);
  for (const int rows : {2, 5, 17}) {
    for (const int c : {2, 3}) {
      for (const auto criterion :
           {core::SplitCriterion::kGini, core::SplitCriterion::kEntropy}) {
        for (int trial = 0; trial < 10; ++trial) {
          core::CountMatrix matrix(rows, c);
          std::uniform_int_distribution<int> count_of(0, 9);
          for (int v = 0; v < rows; ++v) {
            if (trial % 3 == 0 && v % 4 == 1) continue;  // leave empty rows
            for (int j = 0; j < c; ++j) {
              for (int k = count_of(rng); k > 0; --k) matrix.increment(v, j);
            }
          }
          const SplitCandidate fast = core::best_categorical_split(
              matrix, 5, core::CategoricalSplit::kBinarySubset, criterion);
          const SplitCandidate slow = subset_oracle(matrix, 5, criterion);
          EXPECT_EQ(fast.gini, slow.gini)
              << "rows=" << rows << " c=" << c << " trial=" << trial;
          EXPECT_EQ(fast.subset, slow.subset);
          EXPECT_EQ(fast.kind, slow.kind);
          EXPECT_EQ(fast.attribute, slow.attribute);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SoA sample sort / rebalance vs the entry versions
// ---------------------------------------------------------------------------

TEST(SortDifferential, SampleSortColumnsMatchesEntrySort) {
  for (const int p : {1, 3, 4}) {
    mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      std::mt19937 rng(100 + static_cast<unsigned>(comm.rank()));
      std::uniform_int_distribution<int> value_of(0, 30);
      std::uniform_int_distribution<int> size_of(5, 60);
      const int n = size_of(rng);
      std::vector<data::ContinuousEntry> entries(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        entries[static_cast<std::size_t>(i)].value =
            static_cast<double>(value_of(rng));
        entries[static_cast<std::size_t>(i)].rid = comm.rank() * 1000 + i;
        entries[static_cast<std::size_t>(i)].cls = i % 2;
      }
      const data::ContinuousColumns cols = data::columns_from_entries(entries);

      const std::vector<data::ContinuousEntry> sorted_entries =
          sort::sample_sort(comm, entries, data::ContinuousEntryLess{});
      const data::ContinuousColumns sorted_cols =
          sort::sample_sort_columns(comm, cols);

      ASSERT_EQ(sorted_cols.size(), sorted_entries.size());
      for (std::size_t i = 0; i < sorted_entries.size(); ++i) {
        EXPECT_EQ(sorted_cols.values[i], sorted_entries[i].value);
        EXPECT_EQ(sorted_cols.rids[i], sorted_entries[i].rid);
        EXPECT_EQ(sorted_cols.cls[i], sorted_entries[i].cls);
      }
    });
  }
}

TEST(SortDifferential, RebalanceColumnsMatchesEntryRebalance) {
  const int p = 4;
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    // Deliberately skewed local sizes.
    const std::size_t n = static_cast<std::size_t>(comm.rank()) * 13 + 2;
    std::vector<data::ContinuousEntry> entries(n);
    for (std::size_t i = 0; i < n; ++i) {
      entries[i].value = static_cast<double>(comm.rank()) + 0.01 * static_cast<double>(i);
      entries[i].rid = comm.rank() * 100 + static_cast<std::int64_t>(i);
      entries[i].cls = static_cast<std::int32_t>(i % 2);
    }
    const data::ContinuousColumns cols = data::columns_from_entries(entries);
    std::uint64_t total = mp::allreduce_value(
        comm, static_cast<std::uint64_t>(n), mp::SumOp{});
    const std::vector<std::size_t> targets =
        sort::equal_partition_sizes(total, static_cast<std::size_t>(p));

    const std::vector<data::ContinuousEntry> balanced_entries =
        sort::rebalance(comm, entries, targets);
    const data::ContinuousColumns balanced_cols =
        sort::rebalance_columns(comm, cols, targets);

    ASSERT_EQ(balanced_cols.size(), balanced_entries.size());
    EXPECT_EQ(balanced_cols.size(),
              targets[static_cast<std::size_t>(comm.rank())]);
    for (std::size_t i = 0; i < balanced_entries.size(); ++i) {
      EXPECT_EQ(balanced_cols.values[i], balanced_entries[i].value);
      EXPECT_EQ(balanced_cols.rids[i], balanced_entries[i].rid);
      EXPECT_EQ(balanced_cols.cls[i], balanced_entries[i].cls);
    }
  });
}

// ---------------------------------------------------------------------------
// Flat hash table vs the chained oracle
// ---------------------------------------------------------------------------

TEST(FlatHashDifferential, MatchesChainedTable) {
  struct Payload {
    std::int64_t tag = 0;
  };
  for (const int p : {1, 3}) {
    mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      // Few buckets: heavy collisions in the chained table, heavy probing
      // and several capacity doublings in the flat one.
      core::DistributedChainedHashTable<Payload> chained(comm, 97);
      core::DistributedFlatHashTable<Payload> flat(comm, 97);

      std::vector<core::DistributedChainedHashTable<Payload>::Update> cupd;
      std::vector<core::DistributedFlatHashTable<Payload>::Update> fupd;
      for (std::int64_t k = comm.rank(); k < 5000; k += comm.size()) {
        const std::int64_t key = (k * 37) % 6007;
        cupd.push_back({key, {k}});
        fupd.push_back({key, {k}});
      }
      chained.update(cupd);
      flat.update(fupd);
      // Second round overwrites a subset: insert-or-assign semantics.
      cupd.clear();
      fupd.clear();
      for (std::int64_t k = comm.rank(); k < 1000; k += comm.size()) {
        cupd.push_back({k, {-k}});
        fupd.push_back({k, {-k}});
      }
      chained.update(cupd, /*block_limit=*/100);
      flat.update(fupd, /*block_limit=*/100);

      std::vector<std::int64_t> keys;
      for (std::int64_t k = comm.rank(); k < 7000; k += comm.size()) {
        keys.push_back(k);  // includes keys never inserted
      }
      const auto from_chained = chained.enquire(keys);
      const auto from_flat = flat.enquire(keys);
      ASSERT_EQ(from_chained.size(), from_flat.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(from_chained[i].found, from_flat[i].found) << keys[i];
        if (from_chained[i].found) {
          EXPECT_EQ(from_chained[i].value.tag, from_flat[i].value.tag)
              << keys[i];
        }
      }
    });
  }
}

TEST(FlatHash, GrowsBeyondInitialCapacity) {
  struct Payload {
    std::int64_t tag = 0;
  };
  mp::run_ranks(1, kZero, [&](mp::Comm& comm) {
    core::DistributedFlatHashTable<Payload> table(comm, 8);
    const std::size_t initial = table.local_capacity();
    std::vector<core::DistributedFlatHashTable<Payload>::Update> updates;
    for (std::int64_t k = 0; k < 2000; ++k) updates.push_back({k, {k * 3}});
    table.update(updates);
    EXPECT_EQ(table.local_entries(), 2000u);
    EXPECT_GT(table.local_capacity(), initial);
    // Load factor stays under the 70% rehash threshold.
    EXPECT_LE((table.local_entries() + 1) * 10, table.local_capacity() * 7 +
                                                    10);
    std::vector<std::int64_t> keys;
    for (std::int64_t k = 0; k < 2000; ++k) keys.push_back(k);
    const auto found = table.enquire(keys);
    for (std::int64_t k = 0; k < 2000; ++k) {
      ASSERT_TRUE(found[static_cast<std::size_t>(k)].found) << k;
      EXPECT_EQ(found[static_cast<std::size_t>(k)].value.tag, k * 3);
    }
  });
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(Arena, AllocationsAreZeroedDistinctAndStable) {
  util::Arena arena;
  std::vector<std::span<std::int64_t>> spans;
  // Allocate enough to force chained-block growth; earlier spans must stay
  // valid and keep their contents.
  for (int round = 0; round < 6; ++round) {
    auto span = arena.alloc_zeroed<std::int64_t>(1000);
    for (const std::int64_t v : span) EXPECT_EQ(v, 0);
    for (std::size_t i = 0; i < span.size(); ++i) {
      span[i] = round * 100000 + static_cast<std::int64_t>(i);
    }
    spans.push_back(span);
  }
  EXPECT_GT(arena.num_blocks(), 1u);
  for (int round = 0; round < 6; ++round) {
    for (std::size_t i = 0; i < spans[static_cast<std::size_t>(round)].size();
         ++i) {
      EXPECT_EQ(spans[static_cast<std::size_t>(round)][i],
                round * 100000 + static_cast<std::int64_t>(i))
          << "round " << round;
    }
  }
}

TEST(Arena, ResetCoalescesAndRecycles) {
  util::Arena arena;
  for (int i = 0; i < 5; ++i) (void)arena.alloc<std::byte>(3000);
  const std::size_t grown_capacity = arena.capacity();
  EXPECT_GT(arena.num_blocks(), 1u);
  arena.reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_GE(arena.capacity(), grown_capacity);
  EXPECT_EQ(arena.used(), 0u);
  // Steady state: the same allocation pattern now fits the single block.
  for (int i = 0; i < 5; ++i) (void)arena.alloc<std::byte>(3000);
  EXPECT_EQ(arena.num_blocks(), 1u);
  arena.reset();
  auto zeroed = arena.alloc_zeroed<std::int32_t>(64);
  for (const std::int32_t v : zeroed) EXPECT_EQ(v, 0);
}

TEST(Arena, RespectsAlignment) {
  util::Arena arena;
  (void)arena.alloc<char>(3);
  const auto doubles = arena.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                alignof(double),
            0u);
  (void)arena.alloc<char>(1);
  const auto ints = arena.alloc<std::int64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints.data()) %
                alignof(std::int64_t),
            0u);
}

}  // namespace
}  // namespace scalparc
