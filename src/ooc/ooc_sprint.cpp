#include "ooc/ooc_sprint.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/split_finder.hpp"
#include "core/splitter.hpp"
#include "data/attribute_list.hpp"
#include "mp/metrics.hpp"
#include "ooc/external_sort.hpp"

namespace scalparc::ooc {

namespace {

using core::CountMatrix;
using core::SplitCandidate;
using core::SplitKind;
using data::AttributeKind;
using data::CategoricalEntry;
using data::ContinuousEntry;

struct ContFile {
  int attribute = -1;
  TempFile file;
  std::vector<std::uint64_t> seg_counts;  // per active node, in order
};

struct CatFile {
  int attribute = -1;
  std::int32_t cardinality = 0;
  TempFile file;
  std::vector<std::uint64_t> seg_counts;
  // This level's per-node count matrices (small: cardinality x classes).
  std::vector<CountMatrix> matrices;
};

struct ActiveNode {
  int tree_id = -1;
  int depth = 0;
  std::int64_t total = 0;
  std::vector<std::int64_t> class_totals;
};

std::int32_t majority_class(std::span<const std::int64_t> counts) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < counts.size(); ++j) {
    if (counts[j] > counts[best]) best = j;
  }
  return static_cast<std::int32_t>(best);
}

bool is_pure(std::span<const std::int64_t> counts) {
  int non_zero = 0;
  for (const std::int64_t c : counts) non_zero += c > 0;
  return non_zero <= 1;
}

// Merges the `run_sizes` consecutive sorted runs stored in `input` into
// `writer`, by (value, rid).
void merge_cont_runs(const TempFile& input,
                     const std::vector<std::uint64_t>& run_sizes,
                     TypedWriter<ContinuousEntry>& writer, IoStats* stats,
                     std::size_t buffer_records) {
  struct Cursor {
    std::unique_ptr<TypedReader<ContinuousEntry>> reader;
    ContinuousEntry current;
  };
  std::vector<Cursor> cursors;
  std::uint64_t offset = 0;
  for (const std::uint64_t size : run_sizes) {
    if (size > 0) {
      Cursor cursor{std::make_unique<TypedReader<ContinuousEntry>>(
                        input, stats, buffer_records, offset, size),
                    ContinuousEntry{}};
      if (cursor.reader->next(cursor.current)) cursors.push_back(std::move(cursor));
    }
    offset += size;
  }
  const data::ContinuousEntryLess less;
  const auto heap_greater = [&](std::size_t a, std::size_t b) {
    return less(cursors[b].current, cursors[a].current);
  };
  std::vector<std::size_t> heap(cursors.size());
  std::iota(heap.begin(), heap.end(), std::size_t{0});
  std::make_heap(heap.begin(), heap.end(), heap_greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const std::size_t idx = heap.back();
    writer.append(cursors[idx].current);
    if (cursors[idx].reader->next(cursors[idx].current)) {
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    } else {
      heap.pop_back();
    }
  }
}

}  // namespace

OocReport fit_ooc_sprint(const data::Dataset& training,
                         const OocOptions& options) {
  const data::Schema& schema = training.schema();
  const std::uint64_t n = training.num_records();
  const int c = schema.num_classes();
  if (n == 0) {
    throw std::invalid_argument("fit_ooc_sprint: empty training set");
  }
  if (options.hash_memory_budget_bytes < sizeof(std::int32_t)) {
    throw std::invalid_argument("fit_ooc_sprint: hash budget below one entry");
  }
  const core::InductionOptions& induction = options.induction;
  if (induction.max_depth < 0 || induction.min_split_records < 2) {
    throw std::invalid_argument("fit_ooc_sprint: bad induction options");
  }

  OocReport report;
  IoStats& io = report.io;
  const std::size_t buffer = options.io_buffer_records;

  // --- Spill + presort the attribute lists --------------------------------
  std::vector<ContFile> cont_files;
  std::vector<CatFile> cat_files;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (schema.attribute(a).kind == AttributeKind::kContinuous) {
      const auto list = data::build_continuous_list(training, a, 0);
      TempFile unsorted = spill<ContinuousEntry>(list, &io);
      ContFile cont;
      cont.attribute = a;
      cont.file = external_sort<ContinuousEntry>(
          unsorted, options.sort_memory_budget_records,
          data::ContinuousEntryLess{}, &io);
      cont.seg_counts = {n};
      cont_files.push_back(std::move(cont));
    } else {
      const auto list = data::build_categorical_list(training, a, 0);
      CatFile cat;
      cat.attribute = a;
      cat.cardinality = schema.attribute(a).cardinality;
      cat.file = spill<CategoricalEntry>(list, &io);
      cat.seg_counts = {n};
      cat_files.push_back(std::move(cat));
    }
  }

  // --- Root ----------------------------------------------------------------
  std::vector<std::int64_t> root_totals(static_cast<std::size_t>(c), 0);
  for (const std::int32_t label : training.labels()) {
    ++root_totals[static_cast<std::size_t>(label)];
  }
  report.tree = core::DecisionTree(schema);
  core::TreeNode root;
  root.is_leaf = true;
  root.class_counts = root_totals;
  root.num_records = static_cast<std::int64_t>(n);
  root.majority_class = majority_class(root_totals);
  report.tree.add_node(std::move(root));

  std::vector<ActiveNode> active;
  if (!is_pure(root_totals) &&
      static_cast<std::int64_t>(n) >= induction.min_split_records &&
      induction.max_depth > 0) {
    active.push_back(ActiveNode{0, 0, static_cast<std::int64_t>(n), root_totals});
  }

  // Hash-table pass geometry: 4 bytes per rid of the full record-id space.
  const std::uint64_t rids_per_pass = std::max<std::uint64_t>(
      1, options.hash_memory_budget_bytes / sizeof(std::int32_t));
  const std::uint64_t passes_per_level = (n + rids_per_pass - 1) / rids_per_pass;

  // --- Level loop -----------------------------------------------------------
  while (!active.empty()) {
    const std::size_t m = active.size();

    // ---------------- split determination (streaming) ----------------------
    std::vector<SplitCandidate> best(m);
    for (ContFile& cont : cont_files) {
      TypedReader<ContinuousEntry> reader(cont.file, &io, buffer);
      for (std::size_t i = 0; i < m; ++i) {
        const std::vector<std::int64_t> zeros(static_cast<std::size_t>(c), 0);
        core::IncrementalImpurityScanner scanner(active[i].class_totals, zeros,
                                                 induction.criterion);
        double prev = 0.0;
        bool has = false;
        ContinuousEntry entry;
        for (std::uint64_t k = 0; k < cont.seg_counts[i]; ++k) {
          if (!reader.next(entry)) {
            throw std::logic_error("fit_ooc_sprint: short continuous segment");
          }
          if (has && entry.value != prev) {
            SplitCandidate candidate;
            candidate.gini = scanner.current_impurity();
            candidate.attribute = static_cast<std::int32_t>(cont.attribute);
            candidate.kind = SplitKind::kContinuous;
            candidate.threshold = entry.value;
            if (core::candidate_less(candidate, best[i])) best[i] = candidate;
          }
          scanner.advance(entry.cls);
          prev = entry.value;
          has = true;
        }
      }
    }
    for (CatFile& cat : cat_files) {
      cat.matrices.assign(m, CountMatrix(cat.cardinality, c));
      TypedReader<CategoricalEntry> reader(cat.file, &io, buffer);
      for (std::size_t i = 0; i < m; ++i) {
        CategoricalEntry entry;
        for (std::uint64_t k = 0; k < cat.seg_counts[i]; ++k) {
          if (!reader.next(entry)) {
            throw std::logic_error("fit_ooc_sprint: short categorical segment");
          }
          cat.matrices[i].increment(entry.value, entry.cls);
        }
        const SplitCandidate candidate = core::best_categorical_split(
            cat.matrices[i], static_cast<std::int32_t>(cat.attribute),
            induction.categorical_split, induction.criterion);
        if (core::candidate_less(candidate, best[i])) best[i] = candidate;
      }
    }

    std::vector<bool> will_split(m, false);
    std::vector<std::vector<std::int32_t>> value_to_child(m);
    std::vector<int> num_children(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!best[i].valid()) continue;
      const double node_impurity =
          core::impurity_of_counts(active[i].class_totals, induction.criterion);
      if (!(best[i].gini < node_impurity - induction.min_gini_improvement)) continue;
      will_split[i] = true;
      if (best[i].kind == SplitKind::kContinuous) {
        num_children[i] = 2;
      } else {
        const CatFile* winner = nullptr;
        for (const CatFile& cat : cat_files) {
          if (cat.attribute == best[i].attribute) winner = &cat;
        }
        value_to_child[i] =
            best[i].kind == SplitKind::kCategoricalMultiWay
                ? core::value_to_child_multiway(winner->matrices[i])
                : core::value_to_child_subset(winner->matrices[i], best[i].subset);
        num_children[i] = core::num_children_of(value_to_child[i]);
      }
    }

    // Child slot of a splitting-attribute entry.
    const auto cont_child = [&](std::size_t i, const ContinuousEntry& e) {
      return static_cast<std::int32_t>(e.value < best[i].threshold ? 0 : 1);
    };
    const auto cat_child = [&](std::size_t i, const CategoricalEntry& e) {
      return value_to_child[i][static_cast<std::size_t>(e.value)];
    };

    // ---------------- counting pre-pass ------------------------------------
    // One streaming read of each splitting attribute's file yields the
    // children's class histograms (needed to create tree nodes before any
    // hash-table pass can decide which children stay active).
    std::vector<std::size_t> kid_offset(m + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      kid_offset[i + 1] = kid_offset[i] + static_cast<std::size_t>(num_children[i]) *
                                              static_cast<std::size_t>(c);
    }
    std::vector<std::int64_t> kid_counts(kid_offset[m], 0);
    const auto count_into = [&](std::size_t i, std::int32_t child, std::int32_t cls) {
      ++kid_counts[kid_offset[i] +
                   static_cast<std::size_t>(child) * static_cast<std::size_t>(c) +
                   static_cast<std::size_t>(cls)];
    };
    for (ContFile& cont : cont_files) {
      bool any_own = false;
      for (std::size_t i = 0; i < m; ++i) {
        any_own |= will_split[i] && best[i].attribute == cont.attribute;
      }
      if (!any_own) continue;
      TypedReader<ContinuousEntry> reader(cont.file, &io, buffer);
      ContinuousEntry entry;
      for (std::size_t i = 0; i < m; ++i) {
        const bool own = will_split[i] && best[i].attribute == cont.attribute;
        for (std::uint64_t k = 0; k < cont.seg_counts[i]; ++k) {
          (void)reader.next(entry);
          if (own) count_into(i, cont_child(i, entry), entry.cls);
        }
      }
    }
    for (CatFile& cat : cat_files) {
      // Categorical histograms follow directly from the stored matrices.
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i] || best[i].attribute != cat.attribute) continue;
        for (std::int32_t v = 0; v < cat.cardinality; ++v) {
          const std::int32_t child = value_to_child[i][static_cast<std::size_t>(v)];
          if (child < 0) continue;
          for (int j = 0; j < c; ++j) {
            kid_counts[kid_offset[i] +
                       static_cast<std::size_t>(child) * static_cast<std::size_t>(c) +
                       static_cast<std::size_t>(j)] += cat.matrices[i].at(v, j);
          }
        }
      }
    }

    // ---------------- create children --------------------------------------
    std::vector<ActiveNode> next_active;
    std::vector<std::vector<int>> child_slot_target(m);
    for (std::size_t i = 0; i < m; ++i) {
      if (!will_split[i]) continue;
      core::TreeNode& node = report.tree.node(active[i].tree_id);
      node.is_leaf = false;
      node.split.attribute = best[i].attribute;
      node.split.num_children = num_children[i];
      if (best[i].kind == SplitKind::kContinuous) {
        node.split.kind = AttributeKind::kContinuous;
        node.split.threshold = best[i].threshold;
      } else {
        node.split.kind = AttributeKind::kCategorical;
        node.split.value_to_child = value_to_child[i];
      }
      child_slot_target[i].assign(static_cast<std::size_t>(num_children[i]), -1);
      for (int slot = 0; slot < num_children[i]; ++slot) {
        const std::span<const std::int64_t> counts =
            std::span<const std::int64_t>(kid_counts)
                .subspan(kid_offset[i] + static_cast<std::size_t>(slot) *
                                             static_cast<std::size_t>(c),
                         static_cast<std::size_t>(c));
        core::TreeNode child;
        child.is_leaf = true;
        child.class_counts.assign(counts.begin(), counts.end());
        child.num_records =
            std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
        child.majority_class = majority_class(counts);
        child.depth = active[i].depth + 1;
        const int child_id = report.tree.add_node(std::move(child));
        report.tree.node(active[i].tree_id).children.push_back(child_id);
        const core::TreeNode& stored = report.tree.node(child_id);
        if (!is_pure(stored.class_counts) &&
            stored.num_records >= induction.min_split_records &&
            stored.depth < induction.max_depth) {
          child_slot_target[i][static_cast<std::size_t>(slot)] =
              static_cast<int>(next_active.size());
          next_active.push_back(ActiveNode{child_id, stored.depth,
                                           stored.num_records,
                                           stored.class_counts});
        }
      }
    }

    // ---------------- splitting passes -------------------------------------
    // Output: per (attribute, next node) one child file; continuous child
    // files hold one sorted run per pass (merged below).
    const std::size_t next_m = next_active.size();
    std::vector<std::vector<TempFile>> cont_out(cont_files.size());
    std::vector<std::vector<TempFile>> cat_out(cat_files.size());
    // Run boundaries: cont_runs[list][node][pass] = records written.
    std::vector<std::vector<std::vector<std::uint64_t>>> cont_runs(cont_files.size());
    std::vector<std::vector<std::uint64_t>> cat_counts(cat_files.size());
    for (std::size_t l = 0; l < cont_files.size(); ++l) {
      cont_out[l] = std::vector<TempFile>(next_m);
      cont_runs[l].assign(next_m, std::vector<std::uint64_t>(passes_per_level, 0));
      io.files_created += next_m;
    }
    for (std::size_t l = 0; l < cat_files.size(); ++l) {
      cat_out[l] = std::vector<TempFile>(next_m);
      cat_counts[l].assign(next_m, 0);
      io.files_created += next_m;
    }

    std::vector<std::int32_t> table;  // rid-range hash table of one pass
    for (std::uint64_t pass = 0; pass < passes_per_level; ++pass) {
      const std::uint64_t lo = pass * rids_per_pass;
      const std::uint64_t hi = std::min(n, lo + rids_per_pass);
      const auto in_range = [&](std::int64_t rid) {
        return static_cast<std::uint64_t>(rid) >= lo &&
               static_cast<std::uint64_t>(rid) < hi;
      };
      table.assign(hi - lo, -1);

      // (a) build this pass's table slice from the splitting attributes.
      // Every pass after the first is an extra full read of those files.
      if (pass > 0) io.extra_passes += 1;
      for (ContFile& cont : cont_files) {
        bool any_own = false;
        for (std::size_t i = 0; i < m; ++i) {
          any_own |= will_split[i] && best[i].attribute == cont.attribute;
        }
        if (!any_own) continue;
        TypedReader<ContinuousEntry> reader(cont.file, &io, buffer);
        ContinuousEntry entry;
        for (std::size_t i = 0; i < m; ++i) {
          const bool own = will_split[i] && best[i].attribute == cont.attribute;
          for (std::uint64_t k = 0; k < cont.seg_counts[i]; ++k) {
            (void)reader.next(entry);
            if (own && in_range(entry.rid)) {
              table[static_cast<std::uint64_t>(entry.rid) - lo] =
                  cont_child(i, entry);
            }
          }
        }
      }
      for (CatFile& cat : cat_files) {
        bool any_own = false;
        for (std::size_t i = 0; i < m; ++i) {
          any_own |= will_split[i] && best[i].attribute == cat.attribute;
        }
        if (!any_own) continue;
        TypedReader<CategoricalEntry> reader(cat.file, &io, buffer);
        CategoricalEntry entry;
        for (std::size_t i = 0; i < m; ++i) {
          const bool own = will_split[i] && best[i].attribute == cat.attribute;
          for (std::uint64_t k = 0; k < cat.seg_counts[i]; ++k) {
            (void)reader.next(entry);
            if (own && in_range(entry.rid)) {
              table[static_cast<std::uint64_t>(entry.rid) - lo] =
                  cat_child(i, entry);
            }
          }
        }
      }

      // (b) split every attribute file's in-range entries into child files.
      for (std::size_t l = 0; l < cont_files.size(); ++l) {
        ContFile& cont = cont_files[l];
        std::vector<std::unique_ptr<TypedWriter<ContinuousEntry>>> writers(next_m);
        for (std::size_t j = 0; j < next_m; ++j) {
          writers[j] = std::make_unique<TypedWriter<ContinuousEntry>>(
              cont_out[l][j], &io, buffer);
        }
        TypedReader<ContinuousEntry> reader(cont.file, &io, buffer);
        ContinuousEntry entry;
        for (std::size_t i = 0; i < m; ++i) {
          const bool own = will_split[i] && best[i].attribute == cont.attribute;
          for (std::uint64_t k = 0; k < cont.seg_counts[i]; ++k) {
            (void)reader.next(entry);
            if (!will_split[i] || !in_range(entry.rid)) continue;
            const std::int32_t child =
                own ? cont_child(i, entry)
                    : table[static_cast<std::uint64_t>(entry.rid) - lo];
            if (child < 0) {
              throw std::logic_error("fit_ooc_sprint: unassigned record id");
            }
            const int target = child_slot_target[i][static_cast<std::size_t>(child)];
            if (target >= 0) {
              writers[static_cast<std::size_t>(target)]->append(entry);
              ++cont_runs[l][static_cast<std::size_t>(target)][pass];
            }
          }
        }
      }
      for (std::size_t l = 0; l < cat_files.size(); ++l) {
        CatFile& cat = cat_files[l];
        std::vector<std::unique_ptr<TypedWriter<CategoricalEntry>>> writers(next_m);
        for (std::size_t j = 0; j < next_m; ++j) {
          writers[j] = std::make_unique<TypedWriter<CategoricalEntry>>(
              cat_out[l][j], &io, buffer);
        }
        TypedReader<CategoricalEntry> reader(cat.file, &io, buffer);
        CategoricalEntry entry;
        for (std::size_t i = 0; i < m; ++i) {
          const bool own = will_split[i] && best[i].attribute == cat.attribute;
          for (std::uint64_t k = 0; k < cat.seg_counts[i]; ++k) {
            (void)reader.next(entry);
            if (!will_split[i] || !in_range(entry.rid)) continue;
            const std::int32_t child =
                own ? cat_child(i, entry)
                    : table[static_cast<std::uint64_t>(entry.rid) - lo];
            if (child < 0) {
              throw std::logic_error("fit_ooc_sprint: unassigned record id");
            }
            const int target = child_slot_target[i][static_cast<std::size_t>(child)];
            if (target >= 0) {
              writers[static_cast<std::size_t>(target)]->append(entry);
              ++cat_counts[l][static_cast<std::size_t>(target)];
            }
          }
        }
      }
    }
    report.total_passes += passes_per_level;
    report.max_passes_per_level =
        std::max(report.max_passes_per_level, passes_per_level);

    // ---------------- assemble next-level files ----------------------------
    for (std::size_t l = 0; l < cont_files.size(); ++l) {
      ContFile next;
      next.attribute = cont_files[l].attribute;
      next.file = TempFile(&io);
      next.seg_counts.assign(next_m, 0);
      TypedWriter<ContinuousEntry> writer(next.file, &io, buffer);
      for (std::size_t j = 0; j < next_m; ++j) {
        // Pass ranges partition by rid, so each child file holds one sorted
        // run per pass; merge them by (value, rid).
        merge_cont_runs(cont_out[l][j], cont_runs[l][j], writer, &io, buffer);
        next.seg_counts[j] = std::accumulate(cont_runs[l][j].begin(),
                                             cont_runs[l][j].end(),
                                             std::uint64_t{0});
      }
      writer.flush();
      cont_files[l] = std::move(next);
    }
    for (std::size_t l = 0; l < cat_files.size(); ++l) {
      CatFile next;
      next.attribute = cat_files[l].attribute;
      next.cardinality = cat_files[l].cardinality;
      next.file = TempFile(&io);
      next.seg_counts = cat_counts[l];
      TypedWriter<CategoricalEntry> writer(next.file, &io, buffer);
      for (std::size_t j = 0; j < next_m; ++j) {
        // Passes cover ascending rid ranges, so concatenation preserves the
        // rid order categorical lists are kept in.
        TypedReader<CategoricalEntry> reader(cat_out[l][j], &io, buffer);
        CategoricalEntry entry;
        while (reader.next(entry)) writer.append(entry);
      }
      writer.flush();
      cat_files[l] = std::move(next);
    }

    ++report.levels;
    active = std::move(next_active);
  }

  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    mp::absorb_io_stats(*sink, io.bytes_written, io.bytes_read,
                        io.files_created, io.extra_passes);
  }
  return report;
}

}  // namespace scalparc::ooc
