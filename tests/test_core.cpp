// Unit tests for the core primitives: count matrices, gini, split
// candidates, categorical split search, splitter helpers, the decision-tree
// model, evaluation and MDL pruning.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/predict.hpp"
#include "core/pruning.hpp"
#include "core/split_finder.hpp"
#include "core/splitter.hpp"
#include "core/tree.hpp"
#include "data/synthetic.hpp"

namespace scalparc {
namespace {

using core::CountMatrix;
using core::SplitCandidate;
using core::SplitKind;
using data::AttributeKind;
using data::Schema;

// ---------------------------------------------------------------------------
// CountMatrix
// ---------------------------------------------------------------------------

TEST(CountMatrix, IncrementAndTotals) {
  CountMatrix m(3, 2);
  m.increment(0, 1);
  m.increment(0, 1);
  m.increment(2, 0);
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.row_total(0), 2);
  EXPECT_EQ(m.row_total(1), 0);
  EXPECT_EQ(m.total(), 3);
}

TEST(CountMatrix, FlatRoundTrip) {
  CountMatrix m(2, 3);
  m.increment(1, 2);
  const CountMatrix n = CountMatrix::from_flat(2, 3, m.flat());
  EXPECT_TRUE(m == n);
}

TEST(CountMatrix, AddShapes) {
  CountMatrix a(2, 2);
  CountMatrix b(2, 2);
  a.increment(0, 0);
  b.increment(0, 0);
  a += b;
  EXPECT_EQ(a.at(0, 0), 2);
  CountMatrix c(3, 2);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(CountMatrix, BadShapeThrows) {
  EXPECT_THROW(CountMatrix(-1, 2), std::invalid_argument);
  EXPECT_THROW(CountMatrix(2, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Gini
// ---------------------------------------------------------------------------

TEST(Gini, PureIsZero) {
  const std::int64_t counts[] = {10, 0, 0};
  EXPECT_DOUBLE_EQ(core::gini_of_counts(counts), 0.0);
}

TEST(Gini, UniformTwoClassesIsHalf) {
  const std::int64_t counts[] = {5, 5};
  EXPECT_DOUBLE_EQ(core::gini_of_counts(counts), 0.5);
}

TEST(Gini, EmptyIsZero) {
  const std::int64_t counts[] = {0, 0};
  EXPECT_DOUBLE_EQ(core::gini_of_counts(counts), 0.0);
}

TEST(Gini, BoundedByOneMinusOneOverC) {
  // Property: gini of any histogram with c classes lies in [0, 1 - 1/c].
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int c = 2 + static_cast<int>(rng.next_below(5));
    std::vector<std::int64_t> counts(static_cast<std::size_t>(c));
    for (auto& v : counts) v = static_cast<std::int64_t>(rng.next_below(50));
    const double g = core::gini_of_counts(counts);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0 - 1.0 / c + 1e-12);
  }
}

TEST(Gini, SplitWeightsPartitions) {
  // Paper example shape: perfect split -> gini 0.
  CountMatrix m(2, 2);
  m.at(0, 0) = 4;
  m.at(1, 1) = 6;
  EXPECT_DOUBLE_EQ(core::gini_of_split(m), 0.0);
  // Totally mixed split of 50/50 data -> 0.5.
  CountMatrix u(2, 2);
  u.at(0, 0) = u.at(0, 1) = u.at(1, 0) = u.at(1, 1) = 5;
  EXPECT_DOUBLE_EQ(core::gini_of_split(u), 0.5);
}

TEST(GiniScanner, MatchesBruteForce) {
  // Scan [A A B B B] one record at a time; compare against gini_of_split of
  // the explicit 2xC matrices.
  const std::int64_t totals[] = {2, 3};
  const std::int64_t zeros[] = {0, 0};
  core::BinaryGiniScanner scanner(totals, zeros);
  const std::int32_t classes[] = {0, 0, 1, 1, 1};
  for (int i = 0; i < 5; ++i) {
    scanner.advance(classes[i]);
    CountMatrix m(2, 2);
    for (int k = 0; k < 5; ++k) {
      m.increment(k <= i ? 0 : 1, classes[k]);
    }
    if (i == 4) {
      EXPECT_TRUE(std::isinf(scanner.current_impurity()));  // empty upper side
    } else {
      EXPECT_NEAR(scanner.current_impurity(), core::gini_of_split(m), 1e-12);
    }
  }
}

TEST(GiniScanner, EmptyBelowIsInvalid) {
  const std::int64_t totals[] = {2, 3};
  const std::int64_t zeros[] = {0, 0};
  const core::BinaryGiniScanner scanner(totals, zeros);
  EXPECT_TRUE(std::isinf(scanner.current_impurity()));
}

TEST(GiniScanner, StartsFromParallelPrefix) {
  // below_start from "another processor": 1 record of class 0 already below.
  const std::int64_t totals[] = {2, 1};
  const std::int64_t below[] = {1, 0};
  core::BinaryGiniScanner scanner(totals, below);
  EXPECT_EQ(scanner.below_total(), 1);
  // Split: below {1,0}, above {1,1} -> (1/3)*0 + (2/3)*0.5.
  EXPECT_NEAR(scanner.current_impurity(), (2.0 / 3.0) * 0.5, 1e-12);
}

TEST(GiniScanner, RejectsInconsistentInput) {
  const std::int64_t totals[] = {1, 1};
  const std::int64_t too_many[] = {2, 0};
  EXPECT_THROW(core::BinaryGiniScanner(totals, too_many), std::invalid_argument);
  const std::int64_t mismatched[] = {0};
  EXPECT_THROW(core::BinaryGiniScanner(totals, mismatched), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Entropy criterion
// ---------------------------------------------------------------------------

TEST(Entropy, PureIsZero) {
  const std::int64_t counts[] = {10, 0};
  EXPECT_DOUBLE_EQ(core::entropy_of_counts(counts), 0.0);
}

TEST(Entropy, UniformTwoClassesIsOneBit) {
  const std::int64_t counts[] = {8, 8};
  EXPECT_DOUBLE_EQ(core::entropy_of_counts(counts), 1.0);
}

TEST(Entropy, UniformFourClassesIsTwoBits) {
  const std::int64_t counts[] = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(core::entropy_of_counts(counts), 2.0);
}

TEST(Entropy, BoundedByLog2C) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int c = 2 + static_cast<int>(rng.next_below(6));
    std::vector<std::int64_t> counts(static_cast<std::size_t>(c));
    for (auto& v : counts) v = static_cast<std::int64_t>(rng.next_below(40));
    const double h = core::entropy_of_counts(counts);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, std::log2(static_cast<double>(c)) + 1e-12);
  }
}

TEST(Entropy, ImpurityDispatch) {
  const std::int64_t counts[] = {4, 4};
  EXPECT_DOUBLE_EQ(core::impurity_of_counts(counts, core::SplitCriterion::kGini),
                   0.5);
  EXPECT_DOUBLE_EQ(
      core::impurity_of_counts(counts, core::SplitCriterion::kEntropy), 1.0);
}

TEST(EntropyScanner, MatchesBruteForceWeightedEntropy) {
  const std::int64_t totals[] = {2, 3};
  const std::int64_t zeros[] = {0, 0};
  core::BinaryImpurityScanner scanner(totals, zeros,
                                      core::SplitCriterion::kEntropy);
  const std::int32_t classes[] = {0, 0, 1, 1, 1};
  for (int i = 0; i < 4; ++i) {
    scanner.advance(classes[i]);
    CountMatrix m(2, 2);
    for (int k = 0; k < 5; ++k) m.increment(k <= i ? 0 : 1, classes[k]);
    EXPECT_NEAR(scanner.current_impurity(),
                core::impurity_of_split(m, core::SplitCriterion::kEntropy),
                1e-12);
  }
}

TEST(Entropy, CategoricalSplitUsesCriterion) {
  // A perfect 2-value split: impurity 0 under both criteria, but a mixed
  // one-value dominance case ranks differently in magnitude.
  CountMatrix m(2, 2);
  m.at(0, 0) = 6;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 6;
  const auto gini = core::best_categorical_split(
      m, 0, core::CategoricalSplit::kMultiWay, core::SplitCriterion::kGini);
  const auto entropy = core::best_categorical_split(
      m, 0, core::CategoricalSplit::kMultiWay, core::SplitCriterion::kEntropy);
  EXPECT_NEAR(gini.gini, 0.375, 1e-12);  // both partitions 1-(9+1)/16 = 0.375
  EXPECT_NEAR(entropy.gini, core::entropy_of_counts(std::vector<std::int64_t>{6, 2}),
              1e-12);
  EXPECT_GT(entropy.gini, gini.gini);  // entropy in bits > gini here
}

// ---------------------------------------------------------------------------
// SplitCandidate ordering
// ---------------------------------------------------------------------------

TEST(SplitCandidate, OrderedByGiniFirst) {
  SplitCandidate a;
  a.gini = 0.1;
  a.attribute = 5;
  SplitCandidate b;
  b.gini = 0.2;
  b.attribute = 0;
  EXPECT_TRUE(core::candidate_less(a, b));
  EXPECT_FALSE(core::candidate_less(b, a));
}

TEST(SplitCandidate, TiesBrokenByAttributeThenThreshold) {
  SplitCandidate a;
  a.gini = 0.1;
  a.attribute = 1;
  a.threshold = 5;
  SplitCandidate b = a;
  b.attribute = 2;
  EXPECT_TRUE(core::candidate_less(a, b));
  b = a;
  b.threshold = 6;
  EXPECT_TRUE(core::candidate_less(a, b));
}

TEST(SplitCandidate, InvalidComparesConsistently) {
  const SplitCandidate invalid_a;
  const SplitCandidate invalid_b;
  EXPECT_FALSE(core::candidate_less(invalid_a, invalid_b));
  SplitCandidate real;
  real.gini = 0.3;
  EXPECT_TRUE(core::candidate_less(real, invalid_a));
  const SplitCandidate winner = core::CandidateMinOp{}(invalid_a, real);
  EXPECT_TRUE(winner.valid());
}

// ---------------------------------------------------------------------------
// scan_continuous_segment
// ---------------------------------------------------------------------------

std::vector<data::ContinuousEntry> entries_of(
    std::initializer_list<std::pair<double, std::int32_t>> pairs) {
  std::vector<data::ContinuousEntry> out;
  std::int64_t rid = 0;
  for (const auto& [v, c] : pairs) {
    out.push_back(data::ContinuousEntry{v, rid++, c, 0});
  }
  return out;
}

TEST(ScanContinuous, FindsPerfectSplit) {
  const auto entries = entries_of({{1, 0}, {2, 0}, {3, 1}, {4, 1}});
  const std::int64_t totals[] = {2, 2};
  const std::int64_t zeros[] = {0, 0};
  core::BinaryGiniScanner scanner(totals, zeros);
  SplitCandidate best;
  core::scan_continuous_segment(entries, scanner, false, 0.0, 3, best);
  EXPECT_TRUE(best.valid());
  EXPECT_DOUBLE_EQ(best.gini, 0.0);
  EXPECT_DOUBLE_EQ(best.threshold, 3.0);  // condition is "A < 3"
  EXPECT_EQ(best.attribute, 3);
}

TEST(ScanContinuous, NoCandidateWhenAllValuesEqual) {
  const auto entries = entries_of({{5, 0}, {5, 1}, {5, 0}});
  const std::int64_t totals[] = {2, 1};
  const std::int64_t zeros[] = {0, 0};
  core::BinaryGiniScanner scanner(totals, zeros);
  SplitCandidate best;
  core::scan_continuous_segment(entries, scanner, false, 0.0, 0, best);
  EXPECT_FALSE(best.valid());
}

TEST(ScanContinuous, CrossRankBoundaryCandidate) {
  // This rank's fragment starts at value 10 but the previous rank ended at
  // value 5 with one class-0 record below: the boundary split "A < 10" must
  // be evaluated.
  const auto entries = entries_of({{10, 1}});
  const std::int64_t totals[] = {1, 1};
  const std::int64_t below[] = {1, 0};
  core::BinaryGiniScanner scanner(totals, below);
  SplitCandidate best;
  core::scan_continuous_segment(entries, scanner, true, 5.0, 0, best);
  EXPECT_TRUE(best.valid());
  EXPECT_DOUBLE_EQ(best.gini, 0.0);
  EXPECT_DOUBLE_EQ(best.threshold, 10.0);
}

TEST(ScanContinuous, EqualRunAcrossBoundaryIsNotACandidate) {
  const auto entries = entries_of({{5, 1}, {7, 0}});
  const std::int64_t totals[] = {1, 2};
  const std::int64_t below[] = {0, 1};
  core::BinaryGiniScanner scanner(totals, below);
  SplitCandidate best;
  // Previous rank also ended with value 5 -> "A < 5" would be evaluated
  // there, not here; only "A < 7" is a local candidate.
  core::scan_continuous_segment(entries, scanner, true, 5.0, 0, best);
  EXPECT_TRUE(best.valid());
  EXPECT_DOUBLE_EQ(best.threshold, 7.0);
}

// ---------------------------------------------------------------------------
// best_categorical_split
// ---------------------------------------------------------------------------

TEST(CategoricalSplit, MultiWayGini) {
  CountMatrix m(3, 2);
  m.at(0, 0) = 4;  // value 0: pure class 0
  m.at(1, 1) = 4;  // value 1: pure class 1
  m.at(2, 0) = 1;  // value 2: mixed
  m.at(2, 1) = 1;
  const SplitCandidate c =
      core::best_categorical_split(m, 2, core::CategoricalSplit::kMultiWay);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.kind, SplitKind::kCategoricalMultiWay);
  // gini = (2/10)*0.5 = 0.1
  EXPECT_NEAR(c.gini, 0.1, 1e-12);
}

TEST(CategoricalSplit, SingleValueIsNoSplit) {
  CountMatrix m(4, 2);
  m.at(2, 0) = 5;
  m.at(2, 1) = 5;
  EXPECT_FALSE(core::best_categorical_split(m, 0, core::CategoricalSplit::kMultiWay)
                   .valid());
  EXPECT_FALSE(core::best_categorical_split(m, 0, core::CategoricalSplit::kBinarySubset)
                   .valid());
}

TEST(CategoricalSplit, SubsetFindsPerfectPartition) {
  CountMatrix m(4, 2);
  m.at(0, 0) = 3;
  m.at(1, 1) = 2;
  m.at(2, 0) = 4;
  m.at(3, 1) = 1;
  const SplitCandidate c =
      core::best_categorical_split(m, 1, core::CategoricalSplit::kBinarySubset);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.kind, SplitKind::kCategoricalSubset);
  EXPECT_DOUBLE_EQ(c.gini, 0.0);
  // The winning subset separates {0,2} from {1,3} (or the complement).
  const bool v0 = (c.subset >> 0) & 1;
  EXPECT_EQ((c.subset >> 2) & 1, v0);
  EXPECT_NE((c.subset >> 1) & 1, v0);
}

TEST(CategoricalSplit, SubsetRejectsHugeCardinality) {
  CountMatrix m(65, 2);
  EXPECT_THROW(
      core::best_categorical_split(m, 0, core::CategoricalSplit::kBinarySubset),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// splitter helpers
// ---------------------------------------------------------------------------

TEST(Splitter, ContinuousAssignment) {
  const auto entries = entries_of({{1, 0}, {5, 0}, {9, 1}});
  std::vector<std::int32_t> out(3);
  core::assign_children_continuous(entries, 5.0, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);  // 5 is not < 5
  EXPECT_EQ(out[2], 1);
}

TEST(Splitter, CategoricalAssignmentAndMissingValueThrows) {
  std::vector<data::CategoricalEntry> entries(2);
  entries[0].value = 1;
  entries[1].value = 0;
  const std::vector<std::int32_t> mapping{2, 0};
  std::vector<std::int32_t> out(2);
  core::assign_children_categorical(entries, mapping, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
  entries[0].value = 7;  // outside mapping
  EXPECT_THROW(core::assign_children_categorical(entries, mapping, out),
               std::logic_error);
}

TEST(Splitter, ValueToChildMultiway) {
  CountMatrix m(4, 2);
  m.at(0, 0) = 1;
  m.at(2, 1) = 1;
  m.at(3, 0) = 1;
  const auto mapping = core::value_to_child_multiway(m);
  EXPECT_EQ(mapping, (std::vector<std::int32_t>{0, -1, 1, 2}));
  EXPECT_EQ(core::num_children_of(mapping), 3);
}

TEST(Splitter, ValueToChildSubset) {
  CountMatrix m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 1;
  m.at(2, 0) = 1;
  const auto mapping = core::value_to_child_subset(m, 0b101);
  EXPECT_EQ(mapping, (std::vector<std::int32_t>{0, 1, 0}));
}

// ---------------------------------------------------------------------------
// DecisionTree
// ---------------------------------------------------------------------------

core::DecisionTree tiny_tree() {
  Schema schema({Schema::continuous("x"), Schema::categorical("c", 3)}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = false;
  root.num_records = 10;
  root.class_counts = {6, 4};
  root.majority_class = 0;
  root.split.attribute = 0;
  root.split.kind = AttributeKind::kContinuous;
  root.split.threshold = 2.5;
  root.split.num_children = 2;
  tree.add_node(root);
  core::TreeNode left;
  left.is_leaf = true;
  left.majority_class = 0;
  left.num_records = 6;
  left.class_counts = {6, 0};
  left.depth = 1;
  core::TreeNode right;
  right.is_leaf = true;
  right.majority_class = 1;
  right.num_records = 4;
  right.class_counts = {0, 4};
  right.depth = 1;
  tree.node(0).children = {tree.add_node(left), tree.add_node(right)};
  return tree;
}

data::Dataset tiny_rows() {
  Schema schema({Schema::continuous("x"), Schema::categorical("c", 3)}, 2);
  data::Dataset d(schema);
  const double a[] = {1.0};
  const std::int32_t ca[] = {0};
  d.append(a, ca, 0);
  const double b[] = {3.0};
  const std::int32_t cb[] = {1};
  d.append(b, cb, 1);
  return d;
}

TEST(Tree, PredictFollowsThreshold) {
  const core::DecisionTree tree = tiny_tree();
  const data::Dataset rows = tiny_rows();
  EXPECT_EQ(tree.predict(rows, 0), 0);
  EXPECT_EQ(tree.predict(rows, 1), 1);
  EXPECT_DOUBLE_EQ(tree.accuracy(rows), 1.0);
}

TEST(Tree, CountsAndDepth) {
  const core::DecisionTree tree = tiny_tree();
  EXPECT_EQ(tree.num_nodes(), 3);
  EXPECT_EQ(tree.num_leaves(), 2);
  EXPECT_EQ(tree.depth(), 1);
}

TEST(Tree, UnseenCategoricalValueFallsBackToMajority) {
  Schema schema({Schema::categorical("c", 3)}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = false;
  root.majority_class = 1;
  root.split.attribute = 0;
  root.split.kind = AttributeKind::kCategorical;
  root.split.value_to_child = {0, 1, -1};  // value 2 unseen in training
  root.split.num_children = 2;
  tree.add_node(root);
  core::TreeNode l0;
  l0.majority_class = 0;
  core::TreeNode l1;
  l1.majority_class = 1;
  tree.node(0).children = {tree.add_node(l0), tree.add_node(l1)};

  data::Dataset rows(schema);
  const std::int32_t v2[] = {2};
  rows.append({}, v2, 1);
  EXPECT_EQ(tree.predict(rows, 0), 1);  // root majority
}

TEST(Tree, SameStructureDetectsDifferences) {
  const core::DecisionTree a = tiny_tree();
  core::DecisionTree b = tiny_tree();
  EXPECT_TRUE(a.same_structure(b));
  b.node(0).split.threshold = 9.9;
  EXPECT_FALSE(a.same_structure(b));
}

TEST(Tree, EmptyPredictThrows) {
  core::DecisionTree tree;
  EXPECT_THROW((void)tree.predict(tiny_rows(), 0), std::logic_error);
}

TEST(Tree, PrintContainsAttributeNames) {
  const std::string text = tiny_tree().to_string();
  EXPECT_NE(text.find("x < 2.5"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ConfusionMatrix / evaluate
// ---------------------------------------------------------------------------

TEST(Confusion, Tallies) {
  core::ConfusionMatrix m(2);
  m.record(0, 0);
  m.record(0, 1);
  m.record(1, 1);
  m.record(1, 1);
  EXPECT_EQ(m.total(), 4);
  EXPECT_EQ(m.correct(), 3);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(m.recall(0), 0.5);
  EXPECT_DOUBLE_EQ(m.recall(1), 1.0);
}

TEST(Confusion, RejectsBadInputs) {
  EXPECT_THROW(core::ConfusionMatrix(1), std::invalid_argument);
  core::ConfusionMatrix m(2);
  EXPECT_THROW(m.record(2, 0), std::out_of_range);
}

TEST(Confusion, EvaluateOnDataset) {
  const auto matrix = core::evaluate(tiny_tree(), tiny_rows());
  EXPECT_EQ(matrix.total(), 2);
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 1.0);
}

// ---------------------------------------------------------------------------
// MDL pruning
// ---------------------------------------------------------------------------

TEST(Pruning, CollapsesUselessSplit) {
  // Both children predict the same class as the parent majority; the split
  // fixes zero errors and must be pruned.
  Schema schema({Schema::continuous("x")}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = false;
  root.num_records = 100;
  root.class_counts = {100, 0};
  root.majority_class = 0;
  root.split.attribute = 0;
  root.split.kind = AttributeKind::kContinuous;
  root.split.threshold = 1.0;
  root.split.num_children = 2;
  tree.add_node(root);
  core::TreeNode a;
  a.num_records = 60;
  a.class_counts = {60, 0};
  a.majority_class = 0;
  a.depth = 1;
  core::TreeNode b;
  b.num_records = 40;
  b.class_counts = {40, 0};
  b.majority_class = 0;
  b.depth = 1;
  tree.node(0).children = {tree.add_node(a), tree.add_node(b)};

  const auto report = core::mdl_prune(tree);
  EXPECT_EQ(report.nodes_before, 3);
  EXPECT_EQ(report.nodes_after, 1);
  EXPECT_EQ(report.subtrees_collapsed, 1);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf);
}

TEST(Pruning, KeepsUsefulSplit) {
  // A perfect split of 60/40 records: collapsing it would cost 40 errors,
  // far more than the split's description length.
  Schema schema({Schema::continuous("x")}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = false;
  root.num_records = 100;
  root.class_counts = {60, 40};
  root.majority_class = 0;
  root.split.attribute = 0;
  root.split.kind = AttributeKind::kContinuous;
  root.split.threshold = 2.5;
  root.split.num_children = 2;
  tree.add_node(root);
  core::TreeNode left;
  left.is_leaf = true;
  left.num_records = 60;
  left.class_counts = {60, 0};
  left.majority_class = 0;
  left.depth = 1;
  core::TreeNode right;
  right.is_leaf = true;
  right.num_records = 40;
  right.class_counts = {0, 40};
  right.majority_class = 1;
  right.depth = 1;
  tree.node(0).children = {tree.add_node(left), tree.add_node(right)};

  const auto report = core::mdl_prune(tree);
  EXPECT_EQ(report.nodes_after, 3);
  EXPECT_EQ(report.subtrees_collapsed, 0);
  EXPECT_FALSE(tree.node(tree.root()).is_leaf);
}

TEST(Pruning, Idempotent) {
  core::DecisionTree tree = tiny_tree();
  core::mdl_prune(tree);
  const auto second = core::mdl_prune(tree);
  EXPECT_EQ(second.subtrees_collapsed, 0);
}

TEST(Pruning, EmptyTreeIsNoop) {
  core::DecisionTree tree;
  const auto report = core::mdl_prune(tree);
  EXPECT_EQ(report.nodes_before, 0);
  EXPECT_EQ(report.nodes_after, 0);
}

}  // namespace
}  // namespace scalparc
