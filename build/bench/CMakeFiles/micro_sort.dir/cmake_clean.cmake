file(REMOVE_RECURSE
  "CMakeFiles/micro_sort.dir/micro_sort.cpp.o"
  "CMakeFiles/micro_sort.dir/micro_sort.cpp.o.d"
  "micro_sort"
  "micro_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
