#include "core/pruning.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/schema.hpp"

namespace scalparc::core {

namespace {

std::int64_t errors_at(const TreeNode& node) {
  std::int64_t best = 0;
  for (const std::int64_t count : node.class_counts) {
    if (count > best) best = count;
  }
  return node.num_records - best;
}

double split_description_bits(const DecisionTree& tree, const TreeNode& node) {
  double bits = std::log2(static_cast<double>(tree.schema().num_attributes()));
  if (node.split.kind == data::AttributeKind::kContinuous) {
    bits += std::log2(static_cast<double>(node.num_records) + 1.0);
  } else {
    bits += static_cast<double>(node.split.value_to_child.size());
  }
  return bits;
}

// Returns the MDL cost of the subtree rooted at `id`, collapsing it to a
// leaf whenever that is no more expensive.
double prune_subtree(DecisionTree& tree, int id, int& collapsed) {
  TreeNode& node = tree.node(id);
  const double leaf_cost = 1.0 + static_cast<double>(errors_at(node));
  if (node.is_leaf) return leaf_cost;

  double split_cost = 1.0 + split_description_bits(tree, node);
  for (const int child : node.children) {
    split_cost += prune_subtree(tree, child, collapsed);
  }
  if (leaf_cost <= split_cost) {
    // `node` reference is still valid: prune_subtree never adds nodes.
    node.is_leaf = true;
    node.children.clear();
    node.split = SplitDecision{};
    ++collapsed;
    return leaf_cost;
  }
  return split_cost;
}

// Drops unreachable nodes and renumbers ids depth-first.
DecisionTree compact(const DecisionTree& tree) {
  DecisionTree out(tree.schema());
  // Pre-order copy; children ids are patched after each node is placed.
  struct Frame {
    int old_id;
    int new_parent;
    int slot;
  };
  std::vector<Frame> stack{{tree.root(), -1, -1}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    TreeNode copy = tree.node(frame.old_id);
    const std::vector<int> old_children = copy.children;
    copy.children.assign(old_children.size(), -1);
    const int new_id = out.add_node(std::move(copy));
    if (frame.new_parent >= 0) {
      out.node(frame.new_parent).children[static_cast<std::size_t>(frame.slot)] =
          new_id;
    }
    // Push in reverse so children are numbered left to right.
    for (int slot = static_cast<int>(old_children.size()) - 1; slot >= 0; --slot) {
      stack.push_back(
          Frame{old_children[static_cast<std::size_t>(slot)], new_id, slot});
    }
  }
  return out;
}

}  // namespace

PruneReport mdl_prune(DecisionTree& tree) {
  PruneReport report;
  report.nodes_before = tree.num_nodes();
  if (tree.empty()) return report;
  int collapsed = 0;
  prune_subtree(tree, tree.root(), collapsed);
  if (collapsed > 0) tree = compact(tree);
  report.subtrees_collapsed = collapsed;
  report.nodes_after = tree.num_nodes();
  return report;
}

}  // namespace scalparc::core
