# Empty dependencies file for census_functions.
# This may be replaced when dependencies are built.
