#include "core/split_finder.hpp"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace scalparc::core {

bool candidate_less(const SplitCandidate& a, const SplitCandidate& b) {
  if (a.gini != b.gini) return a.gini < b.gini;
  if (a.attribute != b.attribute) return a.attribute < b.attribute;
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  if (a.threshold != b.threshold) return a.threshold < b.threshold;
  return a.subset < b.subset;
}

std::size_t scan_continuous_columns(const data::ContinuousColumns& cols,
                                    std::size_t begin, std::size_t end,
                                    IncrementalImpurityScanner& scanner,
                                    bool has_prev, double prev_value,
                                    std::int32_t attribute,
                                    SplitCandidate& best) {
  const double* const values = cols.values.data();
  const std::int32_t* const cls = cols.cls.data();
  const int num_classes = scanner.num_classes();

  // Within one attribute scan every candidate shares (attribute, kind) and
  // thresholds strictly increase, so candidate_less degenerates to a strict
  // gini comparison: a later candidate wins only on strictly smaller gini.
  // Track just (gini, threshold) locally and merge into `best` once.
  double local_gini = std::numeric_limits<double>::infinity();
  double local_threshold = 0.0;

  double prev = prev_value;
  bool has = has_prev;
  std::size_t i = begin;
  while (i < end) {
    const double v = values[i];
    std::size_t j = i + 1;
    while (j < end && values[j] == v) ++j;

    if (has && v != prev) {
      const double g = scanner.current_impurity();
      if (g < local_gini) {
        local_gini = g;
        local_threshold = v;
      }
    }

    // Advance the whole run of equal values at once. Two classes is the
    // common case and the class stream is 0/1, so the count is a plain sum
    // the compiler vectorizes; otherwise fall back to per-record updates.
    const std::int64_t run = static_cast<std::int64_t>(j - i);
    if (num_classes == 2) {
      std::int64_t ones = 0;
      for (std::size_t k = i; k < j; ++k) ones += cls[k];
      if (ones > 0) scanner.advance_run(1, ones);
      if (run - ones > 0) scanner.advance_run(0, run - ones);
    } else {
      for (std::size_t k = i; k < j; ++k) scanner.advance(cls[k]);
    }

    prev = v;
    has = true;
    i = j;
  }

  if (local_gini < std::numeric_limits<double>::infinity()) {
    SplitCandidate candidate;
    candidate.gini = local_gini;
    candidate.attribute = attribute;
    candidate.kind = SplitKind::kContinuous;
    candidate.threshold = local_threshold;
    if (candidate_less(candidate, best)) best = candidate;
  }
  return end - begin;
}

namespace {

// Impurity of the binary split whose committed left/right class histograms
// are `left`/`right` (exact int64 counts), or +inf if either side is empty.
// Histograms are exact integer sums, so the result is independent of the
// order rows were accumulated in — evaluating a candidate incrementally
// gives bitwise the same double as rebuilding both sides from scratch.
double sides_impurity(std::span<const std::int64_t> left,
                      std::span<const std::int64_t> right,
                      std::int64_t nl, std::int64_t nr,
                      SplitCriterion criterion) {
  if (nl == 0 || nr == 0) return std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(nl + nr);
  return (static_cast<double>(nl) / n) * impurity_of_counts(left, criterion) +
         (static_cast<double>(nr) / n) * impurity_of_counts(right, criterion);
}

SplitCandidate multiway_candidate(const CountMatrix& matrix,
                                  std::int32_t attribute,
                                  SplitCriterion criterion) {
  SplitCandidate candidate;
  int non_empty = 0;
  for (int v = 0; v < matrix.rows(); ++v) non_empty += matrix.row_total(v) > 0;
  if (non_empty < 2) return candidate;  // a 1-way "split" is no split
  candidate.gini = impurity_of_split(matrix, criterion);
  candidate.attribute = attribute;
  candidate.kind = SplitKind::kCategoricalMultiWay;
  return candidate;
}

SplitCandidate subset_candidate(const CountMatrix& matrix,
                                std::int32_t attribute,
                                SplitCriterion criterion) {
  SplitCandidate candidate;
  if (matrix.rows() > 64) {
    throw std::invalid_argument(
        "best_categorical_split: subset mode limited to cardinality <= 64");
  }
  // Greedy forward selection (SLIQ-style): repeatedly move the value that
  // most improves the split into the left subset; keep the best seen.
  //
  // The committed left/right class histograms persist across rounds; each
  // candidate move of row v is evaluated by temporarily shifting that one
  // row across — O(C) per candidate instead of rebuilding both sides from
  // the matrix (O(V*C)), so a round costs O(V*C) rather than O(V^2*C).
  const int c = matrix.cols();
  std::vector<std::int64_t> left(static_cast<std::size_t>(c), 0);
  std::vector<std::int64_t> right(static_cast<std::size_t>(c), 0);
  std::int64_t nl = 0;
  std::int64_t nr = 0;
  for (int v = 0; v < matrix.rows(); ++v) {
    for (int j = 0; j < c; ++j) {
      right[static_cast<std::size_t>(j)] += matrix.at(v, j);
    }
    nr += matrix.row_total(v);
  }

  const auto shift_row = [&](int v, int direction) {
    for (int j = 0; j < c; ++j) {
      const std::int64_t count = matrix.at(v, j) * direction;
      left[static_cast<std::size_t>(j)] += count;
      right[static_cast<std::size_t>(j)] -= count;
    }
    nl += matrix.row_total(v) * direction;
    nr -= matrix.row_total(v) * direction;
  };

  std::uint64_t subset = 0;
  double best_gini = std::numeric_limits<double>::infinity();
  std::uint64_t best_subset = 0;
  for (;;) {
    double round_best = std::numeric_limits<double>::infinity();
    int round_value = -1;
    for (int v = 0; v < matrix.rows(); ++v) {
      if ((subset >> v) & 1u) continue;
      if (matrix.row_total(v) == 0) continue;
      shift_row(v, +1);
      const double g = sides_impurity(left, right, nl, nr, criterion);
      shift_row(v, -1);
      if (g < round_best) {
        round_best = g;
        round_value = v;
      }
    }
    if (round_value < 0) break;  // no move keeps both sides non-empty
    shift_row(round_value, +1);
    subset |= std::uint64_t{1} << round_value;
    if (round_best < best_gini) {
      best_gini = round_best;
      best_subset = subset;
    }
  }
  if (best_gini == std::numeric_limits<double>::infinity()) return candidate;
  candidate.gini = best_gini;
  candidate.attribute = attribute;
  candidate.kind = SplitKind::kCategoricalSubset;
  candidate.subset = best_subset;
  return candidate;
}

}  // namespace

SplitCandidate best_categorical_split(const CountMatrix& matrix,
                                      std::int32_t attribute,
                                      CategoricalSplit mode,
                                      SplitCriterion criterion) {
  if (mode == CategoricalSplit::kMultiWay) {
    return multiway_candidate(matrix, attribute, criterion);
  }
  return subset_candidate(matrix, attribute, criterion);
}

}  // namespace scalparc::core
