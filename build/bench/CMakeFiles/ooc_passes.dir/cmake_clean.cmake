file(REMOVE_RECURSE
  "CMakeFiles/ooc_passes.dir/ooc_passes.cpp.o"
  "CMakeFiles/ooc_passes.dir/ooc_passes.cpp.o.d"
  "ooc_passes"
  "ooc_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
