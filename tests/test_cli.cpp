// End-to-end tests of the `scalparc` command-line tool through its testable
// library entry point: generate -> train -> inspect -> predict round trips,
// flag validation, and error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli_app.hpp"

namespace scalparc {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "scalparc");
  std::vector<const char*> argv;
  argv.reserve(argv_strings.size());
  for (const std::string& s : argv_strings) argv.push_back(s.c_str());
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = tools::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class CliWorkflow : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::string track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(CliWorkflow, GenerateTrainInspectPredict) {
  const std::string csv = track(temp_path("cli_data.csv"));
  const std::string model = track(temp_path("cli_model.tree"));
  const std::string predictions = track(temp_path("cli_predictions.csv"));

  CliResult gen = run({"generate", "--records", "800", "--function", "F2",
                       "--out", csv});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("800 records"), std::string::npos);

  CliResult train = run({"train", "--data", csv, "--model", model,
                         "--ranks", "3"});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("training accuracy: 1"), std::string::npos);
  EXPECT_NE(train.out.find("model saved"), std::string::npos);

  CliResult inspect = run({"inspect", "--model", model});
  ASSERT_EQ(inspect.code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("classes: 2"), std::string::npos);
  EXPECT_NE(inspect.out.find("attributes: 7"), std::string::npos);

  CliResult predict = run({"predict", "--model", model, "--data", csv,
                           "--out", predictions});
  ASSERT_EQ(predict.code, 0) << predict.err;
  EXPECT_NE(predict.out.find("accuracy: 1"), std::string::npos);

  // The predictions file has a header plus one row per record.
  std::ifstream in(predictions);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "row,actual,predicted");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 800);
}

TEST_F(CliWorkflow, TrainWithEntropySubsetSprintAndPrune) {
  const std::string csv = track(temp_path("cli_data2.csv"));
  const std::string model = track(temp_path("cli_model2.tree"));
  ASSERT_EQ(run({"generate", "--records", "500", "--noise", "0.1",
                 "--out", csv}).code, 0);
  CliResult train = run({"train", "--data", csv, "--model", model,
                         "--ranks", "2", "--criterion", "entropy",
                         "--categorical", "subset", "--strategy", "sprint",
                         "--max-depth", "8", "--prune"});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("pruned:"), std::string::npos);
  EXPECT_EQ(run({"inspect", "--model", model, "--render"}).code, 0);
}

TEST_F(CliWorkflow, BenchPrintsScalingTable) {
  CliResult bench = run({"bench", "--records", "5000", "--procs", "1,2,4"});
  ASSERT_EQ(bench.code, 0) << bench.err;
  EXPECT_NE(bench.out.find("procs"), std::string::npos);
  // Three data rows.
  int lines = 0;
  for (const char ch : bench.out) lines += ch == '\n';
  EXPECT_GE(lines, 5);
}

TEST(Cli, HelpAndUnknownCommand) {
  CliResult help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);

  CliResult unknown = run({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);

  CliResult none = run({});
  EXPECT_EQ(none.code, 2);
}

TEST(Cli, MissingRequiredFlags) {
  EXPECT_EQ(run({"generate"}).code, 2);
  EXPECT_EQ(run({"train", "--data", "x.csv"}).code, 2);
  EXPECT_EQ(run({"predict", "--model", "m.tree"}).code, 2);
  EXPECT_EQ(run({"inspect"}).code, 2);
}

TEST(Cli, BadEnumValues) {
  CliResult result = run({"train", "--data", "x.csv", "--model", "m.tree",
                          "--criterion", "nonsense"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--criterion"), std::string::npos);
}

TEST(Cli, MissingInputFileIsReportedNotCrash) {
  CliResult result = run({"train", "--data", "/nonexistent/in.csv",
                          "--model", temp_path("never.tree")});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST_F(CliWorkflow, ShrinkRecoveryPolicyContinuesWithSurvivors) {
  const std::string csv = track(temp_path("cli_shrink.csv"));
  const std::string model = track(temp_path("cli_shrink.tree"));
  const std::string clean_model = track(temp_path("cli_shrink_clean.tree"));
  const std::string ckpt = temp_path("cli_shrink_ckpt");
  ASSERT_EQ(run({"generate", "--records", "2000", "--out", csv}).code, 0);
  ASSERT_EQ(run({"train", "--data", csv, "--model", clean_model, "--ranks",
                 "4", "--max-depth", "4"}).code, 0);

  CliResult train = run({"train", "--data", csv, "--model", model, "--ranks",
                         "4", "--max-depth", "4", "--checkpoint-dir", ckpt,
                         "--fault-plan", "kill:r=2,level=1",
                         "--recovery-policy", "shrink"});
  EXPECT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("shrunk to 3 survivor rank(s)"),
            std::string::npos)
      << train.out;
  EXPECT_NE(train.out.find("model saved"), std::string::npos);

  // Byte-identical to the clean 4-rank model.
  std::ifstream a(model), b(clean_model);
  std::stringstream abuf, bbuf;
  abuf << a.rdbuf();
  bbuf << b.rdbuf();
  EXPECT_EQ(abuf.str(), bbuf.str());
  std::filesystem::remove_all(ckpt);
}

TEST_F(CliWorkflow, TransportHealingIsReportedByTrain) {
  const std::string csv = track(temp_path("cli_heal.csv"));
  const std::string model = track(temp_path("cli_heal.tree"));
  ASSERT_EQ(run({"generate", "--records", "1000", "--out", csv}).code, 0);
  CliResult train = run(
      {"train", "--data", csv, "--model", model, "--ranks", "2",
       "--max-depth", "3", "--backoff-ms", "4",
       "--fault-plan", "drop:r=0,op=2;drop:r=0,op=3;drop:r=0,op=4"});
  EXPECT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("transport healed in-band:"), std::string::npos)
      << train.out;
}

TEST(Cli, RecoveryAndReliabilityFlagValidation) {
  CliResult bad_policy = run({"train", "--data", "x.csv", "--model", "m",
                              "--recovery-policy", "bogus"});
  EXPECT_EQ(bad_policy.code, 2);
  EXPECT_NE(bad_policy.err.find("--recovery-policy"), std::string::npos);

  CliResult no_ckpt = run({"train", "--data", "x.csv", "--model", "m",
                           "--recovery-policy", "shrink"});
  EXPECT_EQ(no_ckpt.code, 2);
  EXPECT_NE(no_ckpt.err.find("requires --checkpoint-dir"), std::string::npos);

  CliResult bad_budget = run({"train", "--data", "x.csv", "--model", "m",
                              "--max-retransmits", "-1"});
  EXPECT_EQ(bad_budget.code, 2);
  EXPECT_NE(bad_budget.err.find("--max-retransmits"), std::string::npos);

  CliResult bad_backoff = run({"train", "--data", "x.csv", "--model", "m",
                               "--backoff-ms", "0"});
  EXPECT_EQ(bad_backoff.code, 2);
  EXPECT_NE(bad_backoff.err.find("--backoff-ms"), std::string::npos);

  // A fault plan with a duplicated action is rejected with the entry text.
  CliResult dup = run({"train", "--data", "x.csv", "--model", "m",
                       "--fault-plan", "drop:r=0,op=3;drop:r=0,op=3"});
  EXPECT_EQ(dup.code, 1);
  EXPECT_NE(dup.err.find("duplicates an earlier action"), std::string::npos);
}

TEST_F(CliWorkflow, PredictRejectsSchemaMismatch) {
  const std::string csv7 = track(temp_path("cli_7attr.csv"));
  const std::string csv9 = track(temp_path("cli_9attr.csv"));
  const std::string model = track(temp_path("cli_model3.tree"));
  ASSERT_EQ(run({"generate", "--records", "200", "--out", csv7}).code, 0);
  ASSERT_EQ(run({"generate", "--records", "200", "--attributes", "9",
                 "--out", csv9}).code, 0);
  ASSERT_EQ(run({"train", "--data", csv7, "--model", model}).code, 0);
  CliResult predict = run({"predict", "--model", model, "--data", csv9});
  EXPECT_EQ(predict.code, 2);
  EXPECT_NE(predict.err.find("schema"), std::string::npos);
}

TEST(Cli, SplitModeFlagValidation) {
  CliResult bad_mode = run({"train", "--data", "x.csv", "--model", "m",
                            "--split-mode", "bogus"});
  EXPECT_EQ(bad_mode.code, 2);
  EXPECT_NE(bad_mode.err.find("--split-mode"), std::string::npos);

  // --top-k only makes sense with voting; --hist-bins only off exact.
  CliResult stray_topk = run({"train", "--data", "x.csv", "--model", "m",
                              "--split-mode", "histogram", "--top-k", "3"});
  EXPECT_EQ(stray_topk.code, 2);
  EXPECT_NE(stray_topk.err.find("--top-k"), std::string::npos);

  CliResult stray_bins = run({"train", "--data", "x.csv", "--model", "m",
                              "--hist-bins", "32"});
  EXPECT_EQ(stray_bins.code, 2);
  EXPECT_NE(stray_bins.err.find("--hist-bins"), std::string::npos);

  CliResult few_bins = run({"train", "--data", "x.csv", "--model", "m",
                            "--split-mode", "histogram", "--hist-bins", "1"});
  EXPECT_EQ(few_bins.code, 2);
  EXPECT_NE(few_bins.err.find(">= 2"), std::string::npos);

  CliResult bad_topk = run({"train", "--data", "x.csv", "--model", "m",
                            "--split-mode", "voting", "--top-k", "0"});
  EXPECT_EQ(bad_topk.code, 2);
  EXPECT_NE(bad_topk.err.find("--top-k"), std::string::npos);
}

TEST_F(CliWorkflow, TrainsUnderHistogramAndVotingModes) {
  const std::string csv = track(temp_path("cli_hist.csv"));
  ASSERT_EQ(run({"generate", "--records", "1200", "--out", csv}).code, 0);
  for (const char* mode : {"histogram", "voting"}) {
    const std::string model =
        track(temp_path(std::string("cli_hist_") + mode + ".tree"));
    std::vector<std::string> argv = {
        "train",      "--data",      csv,  "--model",    model, "--ranks",
        "4",          "--max-depth", "6",  "--split-mode", mode,
        "--hist-bins", "32"};
    if (std::string(mode) == "voting") {
      argv.push_back("--top-k");
      argv.push_back("2");
    }
    CliResult train = run(argv);
    EXPECT_EQ(train.code, 0) << mode << ": " << train.err;
    EXPECT_NE(train.out.find("model saved"), std::string::npos) << mode;
    CliResult predict = run({"predict", "--model", model, "--data", csv});
    EXPECT_EQ(predict.code, 0) << mode << ": " << predict.err;
  }
}

}  // namespace
}  // namespace scalparc
