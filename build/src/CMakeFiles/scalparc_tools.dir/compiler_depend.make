# Empty compiler generated dependencies file for scalparc_tools.
# This may be replaced when dependencies are built.
