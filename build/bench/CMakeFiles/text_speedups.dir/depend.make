# Empty dependencies file for text_speedups.
# This may be replaced when dependencies are built.
