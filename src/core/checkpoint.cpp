#include "core/checkpoint.hpp"

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/tree_io.hpp"
#include "util/crc32.hpp"

namespace scalparc::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestHeader = "scalparc-ckpt v1";
constexpr const char* kRankManifestHeader = "scalparc-ckpt-rank v1";

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string checkpoint_level_dir(const std::string& root, int level) {
  return (fs::path(root) / ("level_" + std::to_string(level))).string();
}

std::string checkpoint_staging_dir(const std::string& root, int level) {
  return (fs::path(root) / ("staging_level_" + std::to_string(level))).string();
}

void checkpoint_prepare_staging(const std::string& root, int level) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) throw CheckpointError("cannot create root '" + root + "'");
  const fs::path staging = checkpoint_staging_dir(root, level);
  fs::remove_all(staging, ec);  // stale leftovers from an aborted write
  if (!fs::create_directory(staging, ec) || ec) {
    throw CheckpointError("cannot create staging '" + staging.string() + "'");
  }
}

void checkpoint_write_globals(const std::string& staging,
                              const DecisionTree& tree,
                              std::span<const std::int64_t> active_flat,
                              CheckpointManifest manifest) {
  // Tree-so-far in the tree_io text format (exact round trip).
  std::ostringstream tree_text;
  save_tree(tree, tree_text);
  const std::string tree_bytes = tree_text.str();
  {
    std::ofstream out((fs::path(staging) / "tree.txt").string(),
                      std::ios::binary);
    if (!out) throw CheckpointError("cannot write tree.txt");
    out.write(tree_bytes.data(),
              static_cast<std::streamsize>(tree_bytes.size()));
    if (!out) throw CheckpointError("short write to tree.txt");
  }
  manifest.tree_bytes = tree_bytes.size();
  manifest.tree_crc = util::crc32(tree_bytes.data(), tree_bytes.size());

  {
    ooc::TypedWriter<std::int64_t> writer(
        (fs::path(staging) / "active.bin").string());
    writer.append(active_flat);
    writer.flush();
    manifest.active_count = writer.count();
    manifest.active_crc = writer.crc();
  }

  std::ostringstream out;
  out << kManifestHeader << '\n';
  out << "level " << manifest.level << '\n';
  out << "ranks " << manifest.ranks << '\n';
  out << "classes " << manifest.num_classes << '\n';
  out << "records " << manifest.total_records << '\n';
  out << "fingerprint " << manifest.fingerprint << '\n';
  out << "active " << manifest.active_count << ' ' << manifest.active_crc
      << '\n';
  out << "tree " << manifest.tree_bytes << ' ' << manifest.tree_crc << '\n';
  out << "end\n";
  const std::string text = out.str();
  std::ofstream file((fs::path(staging) / "MANIFEST").string(),
                     std::ios::binary);
  if (!file) throw CheckpointError("cannot write MANIFEST");
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) throw CheckpointError("short write to MANIFEST");
}

void checkpoint_commit(const std::string& root, int level) {
  const fs::path staging = checkpoint_staging_dir(root, level);
  const fs::path committed = checkpoint_level_dir(root, level);
  std::error_code ec;
  fs::remove_all(committed, ec);  // replace a stale checkpoint of this level
  fs::rename(staging, committed, ec);
  if (ec) {
    throw CheckpointError("cannot commit level " + std::to_string(level) +
                          ": " + ec.message());
  }
}

CheckpointManifest checkpoint_read_manifest(const std::string& level_dir) {
  const std::string path = (fs::path(level_dir) / "MANIFEST").string();
  std::ifstream in(path);
  if (!in) throw CheckpointError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw CheckpointError("'" + path + "' has a bad header");
  }
  CheckpointManifest manifest;
  std::string key;
  bool complete = false;
  while (in >> key) {
    if (key == "level") {
      if (!(in >> manifest.level)) break;
    } else if (key == "ranks") {
      if (!(in >> manifest.ranks)) break;
    } else if (key == "classes") {
      if (!(in >> manifest.num_classes)) break;
    } else if (key == "records") {
      if (!(in >> manifest.total_records)) break;
    } else if (key == "fingerprint") {
      if (!(in >> manifest.fingerprint)) break;
    } else if (key == "active") {
      if (!(in >> manifest.active_count >> manifest.active_crc)) break;
    } else if (key == "tree") {
      if (!(in >> manifest.tree_bytes >> manifest.tree_crc)) break;
    } else if (key == "end") {
      complete = true;
      break;
    } else {
      throw CheckpointError("'" + path + "' has unknown key '" + key + "'");
    }
  }
  if (!complete) {
    throw CheckpointError("'" + path + "' is truncated (no 'end' marker)");
  }
  if (manifest.ranks <= 0 || manifest.level < 0 || manifest.num_classes < 2) {
    throw CheckpointError("'" + path + "' has implausible header fields");
  }
  return manifest;
}

DecisionTree checkpoint_read_tree(const std::string& level_dir,
                                  const CheckpointManifest& manifest) {
  const std::string path = (fs::path(level_dir) / "tree.txt").string();
  const std::string bytes = read_whole_file(path);
  if (bytes.size() != manifest.tree_bytes) {
    throw CheckpointError("tree.txt does not match its manifest size");
  }
  if (util::crc32(bytes.data(), bytes.size()) != manifest.tree_crc) {
    throw CheckpointError("tree.txt failed its CRC32 check");
  }
  std::istringstream in(bytes);
  try {
    return load_tree(in);
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("tree.txt does not parse: ") + e.what());
  }
}

std::vector<std::int64_t> checkpoint_read_active(
    const std::string& level_dir, const CheckpointManifest& manifest) {
  const std::string path = (fs::path(level_dir) / "active.bin").string();
  if (detail::file_size_or_throw(path) !=
      manifest.active_count * sizeof(std::int64_t)) {
    throw CheckpointError("active.bin does not match its manifest size");
  }
  ooc::TypedReader<std::int64_t> reader(path, nullptr, 4096, 0,
                                        manifest.active_count);
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(manifest.active_count));
  if (reader.read_chunk(std::span<std::int64_t>(out)) != out.size()) {
    throw CheckpointError("active.bin is truncated");
  }
  if (reader.crc() != manifest.active_crc) {
    throw CheckpointError("active.bin failed its CRC32 check");
  }
  return out;
}

std::optional<int> checkpoint_latest_level(const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec) || ec) return std::nullopt;
  std::optional<int> best;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "level_";
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const int level = std::stoi(digits);
    try {
      (void)checkpoint_read_manifest(entry.path().string());
    } catch (const CheckpointError&) {
      continue;  // incomplete or damaged: not a candidate
    }
    if (!best || level > *best) best = level;
  }
  return best;
}

namespace detail {

std::string rank_manifest_path(const std::string& dir, int rank) {
  return (fs::path(dir) / ("rank" + std::to_string(rank) + ".manifest"))
      .string();
}

std::string section_path(const std::string& dir, int rank,
                         const std::string& name) {
  return (fs::path(dir) / ("rank" + std::to_string(rank) + "_" + name + ".bin"))
      .string();
}

void write_rank_manifest(const std::string& dir, int rank,
                         const std::vector<SectionInfo>& sections) {
  std::ostringstream out;
  out << kRankManifestHeader << '\n';
  out << "rank " << rank << '\n';
  out << "sections " << sections.size() << '\n';
  for (const SectionInfo& s : sections) {
    out << "section " << s.name << ' ' << s.count << ' ' << s.bytes << ' '
        << s.crc << '\n';
  }
  out << "end\n";
  const std::string text = out.str();
  std::ofstream file(rank_manifest_path(dir, rank), std::ios::binary);
  if (!file) throw CheckpointError("cannot write rank manifest");
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) throw CheckpointError("short write to rank manifest");
}

std::vector<SectionInfo> read_rank_manifest(const std::string& dir, int rank) {
  const std::string path = rank_manifest_path(dir, rank);
  std::ifstream in(path);
  if (!in) throw CheckpointError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kRankManifestHeader) {
    throw CheckpointError("'" + path + "' has a bad header");
  }
  std::string key;
  int stored_rank = -1;
  std::size_t count = 0;
  if (!(in >> key >> stored_rank) || key != "rank" || stored_rank != rank) {
    throw CheckpointError("'" + path + "' names the wrong rank");
  }
  if (!(in >> key >> count) || key != "sections") {
    throw CheckpointError("'" + path + "' has a bad sections line");
  }
  std::vector<SectionInfo> sections;
  sections.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SectionInfo info;
    if (!(in >> key >> info.name >> info.count >> info.bytes >> info.crc) ||
        key != "section") {
      throw CheckpointError("'" + path + "' has a bad section line");
    }
    sections.push_back(std::move(info));
  }
  if (!(in >> key) || key != "end") {
    throw CheckpointError("'" + path + "' is truncated (no 'end' marker)");
  }
  return sections;
}

std::uint64_t file_size_or_throw(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) throw CheckpointError("cannot stat '" + path + "'");
  return static_cast<std::uint64_t>(size);
}

}  // namespace detail

}  // namespace scalparc::core
