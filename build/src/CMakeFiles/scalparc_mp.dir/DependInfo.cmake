
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/comm.cpp" "src/CMakeFiles/scalparc_mp.dir/mp/comm.cpp.o" "gcc" "src/CMakeFiles/scalparc_mp.dir/mp/comm.cpp.o.d"
  "/root/repo/src/mp/mailbox.cpp" "src/CMakeFiles/scalparc_mp.dir/mp/mailbox.cpp.o" "gcc" "src/CMakeFiles/scalparc_mp.dir/mp/mailbox.cpp.o.d"
  "/root/repo/src/mp/runtime.cpp" "src/CMakeFiles/scalparc_mp.dir/mp/runtime.cpp.o" "gcc" "src/CMakeFiles/scalparc_mp.dir/mp/runtime.cpp.o.d"
  "/root/repo/src/mp/stats.cpp" "src/CMakeFiles/scalparc_mp.dir/mp/stats.cpp.o" "gcc" "src/CMakeFiles/scalparc_mp.dir/mp/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scalparc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
