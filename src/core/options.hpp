// Induction options shared by ScalParC and the baseline classifiers.
#pragma once

#include <cstdint>

namespace scalparc::core {

enum class CategoricalSplit : int {
  // The paper's default: one child per categorical value present at the node.
  kMultiWay = 0,
  // The footnote's alternative: two children characterized by a value
  // subset, chosen greedily (SLIQ-style). Implemented as an extension.
  kBinarySubset = 1,
};

// Impurity measure optimized by the split search. The paper uses gini;
// entropy (C4.5-style information gain) is provided as an extension — the
// split with minimal weighted child impurity maximizes information gain.
enum class SplitCriterion : int {
  kGini = 0,
  kEntropy = 1,
};

// How categorical count matrices become global in FindSplitI (ablation,
// DESIGN.md §6.3). Both produce identical trees.
enum class CategoricalReduction : int {
  // The paper: "a processor is designated to coordinate the computation of
  // the global count matrices for all the nodes" — reduce to one rank per
  // attribute, which evaluates candidates and broadcasts the winning
  // value -> child mappings.
  kCoordinator = 0,
  // Alternative: allreduce the matrices so every rank holds them; redundant
  // candidate evaluation on all ranks, but no broadcast round.
  kAllRanks = 1,
};

// How split points are determined each level (docs/architecture.md "split
// modes"; DESIGN.md §10). kExact is the paper's algorithm over globally
// sorted attribute lists; the other two quantize continuous attributes into
// fixed-width histograms (PV-Tree, arXiv 1611.01276) and run the level on a
// horizontally partitioned record block, dropping the per-level
// communication from O(N/p) to O(attributes * bins) independent of N.
enum class SplitMode : int {
  // ScalParC: candidates at every distinct attribute value, distributed
  // node-table splitting. The accuracy oracle; byte-identical trees at any
  // processor count.
  kExact = 0,
  // Fixed-width per-attribute, per-node class histograms merged in one
  // packed allreduce; candidates at bin boundaries. Trees are still
  // processor-count invariant (bin edges come from a global min/max
  // allreduce; thresholds are real data values — the per-bin minimum), but
  // may differ from exact where a bin straddles the exact cut.
  kHistogram = 1,
  // PV-Tree voting: ranks score attributes on their local histograms, vote
  // their top-k; a packed allreduce elects the global top-2k, and only
  // elected attributes' histograms are merged. Smallest per-level traffic;
  // trees depend on the data partition (deterministic at fixed p).
  kVoting = 2,
};

// In-memory layout of the continuous attribute lists during induction
// (DESIGN.md; docs/architecture.md "memory layout & scan kernels").
enum class DataLayout : int {
  // Padded 24-byte array-of-structs entries, scanned by the recompute
  // impurity scanner. The seed implementation; kept as the differential
  // oracle and the bench baseline.
  kAoS = 0,
  // Structure-of-arrays columns (20 bytes/record, separate value/rid/class
  // streams), scanned by the incremental run-length gini kernel, with
  // per-level scratch served from an arena. The fast path.
  kSoA = 1,
};

struct InductionOptions {
  // Hard depth cap (root is depth 0). 64 never binds in practice; tests use
  // small values to exercise the cutoff.
  int max_depth = 64;
  // Nodes with fewer records than this become leaves (labelled by majority).
  std::int64_t min_split_records = 2;
  // A split must improve on the node's own gini by more than this to be
  // taken; 0 reproduces the paper (stop only when pure / no valid split).
  double min_gini_improvement = 0.0;
  SplitCriterion criterion = SplitCriterion::kGini;
  CategoricalSplit categorical_split = CategoricalSplit::kMultiWay;
  CategoricalReduction categorical_reduction = CategoricalReduction::kCoordinator;
  // Node-table updates are sent in blocks of at most this many entries per
  // rank per round, to bound communication buffer memory (§3.3.2). 0 means
  // "N/p", the paper's choice. Benches ablate this (A1).
  std::int64_t node_table_update_block = 0;
  // Pack each level's split-determination collectives (all continuous count
  // matrices + boundaries into one exscan; all categorical count matrices
  // into one reduce/allreduce; all winning value->child mappings into one
  // broadcast round) so the latency term is O(1) per level instead of
  // O(attributes). Off runs one collective per attribute list — kept as a
  // differential-testing oracle. Both settings produce byte-identical trees,
  // which is why this flag is deliberately NOT part of the SPMD/checkpoint
  // fingerprint: a checkpoint written under one setting resumes under the
  // other.
  bool fuse_collectives = true;
  // Continuous-list layout. Both layouts produce byte-identical trees and
  // byte-identical checkpoint files (sections are always written in AoS
  // entry form), which is why this flag — like fuse_collectives — is
  // deliberately NOT part of the SPMD/checkpoint fingerprint: a checkpoint
  // written under one layout resumes under the other.
  DataLayout layout = DataLayout::kSoA;
  // Split determination mode. Like fuse_collectives and layout, deliberately
  // NOT part of the SPMD/checkpoint fingerprint: every mode consumes and
  // produces the same on-disk checkpoint format (sorted AoS attribute-list
  // sections), so an exact-mode checkpoint resumes under histogram mode and
  // vice versa — the tree below the resume level then follows the resumed
  // mode's split rule.
  SplitMode split_mode = SplitMode::kExact;
  // Histogram/voting: fixed-width bins per continuous attribute (>= 2).
  // More bins = closer to exact splits, linearly more bytes per level.
  int hist_bins = 64;
  // Voting: attributes each rank votes for per node (>= 1); the global
  // election keeps the top 2k vote-getters.
  int top_k = 2;
};

}  // namespace scalparc::core
