#include "util/memory_meter.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace scalparc::util {

std::string_view mem_category_name(MemCategory category) {
  switch (category) {
    case MemCategory::kAttributeLists:
      return "attribute_lists";
    case MemCategory::kNodeTable:
      return "node_table";
    case MemCategory::kCommBuffers:
      return "comm_buffers";
    case MemCategory::kCountMatrices:
      return "count_matrices";
    case MemCategory::kTreeAndMisc:
      return "tree_and_misc";
  }
  return "unknown";
}

void MemoryMeter::allocate(MemCategory category, std::size_t bytes) {
  const int i = static_cast<int>(category);
  current_[i] += bytes;
  current_total_ += bytes;
  peak_[i] = std::max(peak_[i], current_[i]);
  peak_total_ = std::max(peak_total_, current_total_);
}

void MemoryMeter::release(MemCategory category, std::size_t bytes) {
  const int i = static_cast<int>(category);
  assert(current_[i] >= bytes && "memory meter underflow in category");
  assert(current_total_ >= bytes && "memory meter underflow in total");
  current_[i] -= bytes;
  current_total_ -= bytes;
}

void MemoryMeter::reset() {
  current_.fill(0);
  peak_.fill(0);
  current_total_ = 0;
  peak_total_ = 0;
}

void MemoryMeter::merge_peaks(const MemoryMeter& other) {
  for (int i = 0; i < kNumMemCategories; ++i) {
    peak_[i] = std::max(peak_[i], other.peak_[i]);
  }
  peak_total_ = std::max(peak_total_, other.peak_total_);
}

}  // namespace scalparc::util
