file(REMOVE_RECURSE
  "CMakeFiles/fig3a_runtime.dir/fig3a_runtime.cpp.o"
  "CMakeFiles/fig3a_runtime.dir/fig3a_runtime.cpp.o.d"
  "fig3a_runtime"
  "fig3a_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
