// Seeded compound-fault schedule generator for chaos soak runs.
//
// A single FaultPlan expresses one failure; real long-running jobs see
// *compound* sequences — a second kill while the first recovery is still
// re-tiling, a corruption storm followed by a kill, a checkpoint write that
// fails under the job's feet. generate_chaos derives such a sequence
// deterministically from a seed: the same (seed, spec) always yields the
// same FaultSchedule, so a failing soak seed is a one-line repro.
//
// Archetypes (rotated by seed):
//   kKillDuringRecovery   kill at level L on the first run, another kill on
//                         a different rank at level L' > L during recovery
//   kJoinKillInterleave   kill, then kill again right after the recovery
//                         attempt resumes (exercises a kill immediately
//                         after a grow admit when the driver picks kGrow)
//   kCorruptDelayStorm    several corrupt/delay/drop/duplicate wire faults
//                         in one run (the transport heals them in-band),
//                         capped with a kill so recovery still triggers
//   kCheckpointWriteFault no wire faults; instead `checkpoint_write_faults`
//                         transient write failures for the caller to arm
//                         via core checkpoint's test hook
//   kStragglerCompound    gray failure: one rank runs slowed (whole-run slow
//                         fault) so the health layer classifies a straggler;
//                         the next attempt is hit by a kill while the
//                         rebalance is re-tiling, and the attempt after that
//                         is clean so the run can finish
//
// This header lives in mp/ and only depends on mp/fault.hpp; the checkpoint
// fault count is a plain int the driver forwards to the core-layer hook.
#pragma once

#include <cstdint>
#include <string>

#include "mp/fault.hpp"

namespace scalparc::mp {

enum class ChaosArchetype : int {
  kKillDuringRecovery = 0,
  kJoinKillInterleave = 1,
  kCorruptDelayStorm = 2,
  kCheckpointWriteFault = 3,
  kStragglerCompound = 4,
};

const char* to_string(ChaosArchetype archetype);

// Geometry of the run the schedule will be injected into.
struct ChaosSpec {
  int world = 4;    // rank count of the initial attempt
  int levels = 6;   // approximate level count (bounds level triggers)
};

// A generated compound schedule plus its out-of-band companions.
struct GeneratedChaos {
  ChaosArchetype archetype = ChaosArchetype::kKillDuringRecovery;
  FaultSchedule schedule;
  // Transient checkpoint write failures to arm before the run (0 = none);
  // forwarded to core::detail::arm_checkpoint_write_fault by the driver.
  int checkpoint_write_faults = 0;
  // Human-readable one-line summary for soak logs / repro bundles.
  std::string description;
};

// Deterministic: identical (seed, spec) -> identical schedule. The spec's
// world and levels bound every rank / level trigger so the faults can
// actually fire.
GeneratedChaos generate_chaos(std::uint64_t seed, const ChaosSpec& spec);

}  // namespace scalparc::mp
