// Tiny command-line flag parser shared by the examples and benches.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Unknown flags are collected so callers can reject or forward them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scalparc::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  // Comma-separated integer list, e.g. "--procs 2,4,8".
  std::vector<std::int64_t> get_int_list(
      const std::string& name,
      const std::vector<std::int64_t>& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace scalparc::util
