// End-to-end tests of the `scalparc` command-line tool through its testable
// library entry point: generate -> train -> inspect -> predict round trips,
// flag validation, and error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli_app.hpp"

namespace scalparc {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "scalparc");
  std::vector<const char*> argv;
  argv.reserve(argv_strings.size());
  for (const std::string& s : argv_strings) argv.push_back(s.c_str());
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = tools::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class CliWorkflow : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::string track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(CliWorkflow, GenerateTrainInspectPredict) {
  const std::string csv = track(temp_path("cli_data.csv"));
  const std::string model = track(temp_path("cli_model.tree"));
  const std::string predictions = track(temp_path("cli_predictions.csv"));

  CliResult gen = run({"generate", "--records", "800", "--function", "F2",
                       "--out", csv});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("800 records"), std::string::npos);

  CliResult train = run({"train", "--data", csv, "--model", model,
                         "--ranks", "3"});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("training accuracy: 1"), std::string::npos);
  EXPECT_NE(train.out.find("model saved"), std::string::npos);

  CliResult inspect = run({"inspect", "--model", model});
  ASSERT_EQ(inspect.code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("classes: 2"), std::string::npos);
  EXPECT_NE(inspect.out.find("attributes: 7"), std::string::npos);

  CliResult predict = run({"predict", "--model", model, "--data", csv,
                           "--out", predictions});
  ASSERT_EQ(predict.code, 0) << predict.err;
  EXPECT_NE(predict.out.find("accuracy: 1"), std::string::npos);

  // The predictions file has a header plus one row per record.
  std::ifstream in(predictions);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "row,actual,predicted");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 800);
}

TEST_F(CliWorkflow, TrainWithEntropySubsetSprintAndPrune) {
  const std::string csv = track(temp_path("cli_data2.csv"));
  const std::string model = track(temp_path("cli_model2.tree"));
  ASSERT_EQ(run({"generate", "--records", "500", "--noise", "0.1",
                 "--out", csv}).code, 0);
  CliResult train = run({"train", "--data", csv, "--model", model,
                         "--ranks", "2", "--criterion", "entropy",
                         "--categorical", "subset", "--strategy", "sprint",
                         "--max-depth", "8", "--prune"});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("pruned:"), std::string::npos);
  EXPECT_EQ(run({"inspect", "--model", model, "--render"}).code, 0);
}

TEST_F(CliWorkflow, BenchPrintsScalingTable) {
  CliResult bench = run({"bench", "--records", "5000", "--procs", "1,2,4"});
  ASSERT_EQ(bench.code, 0) << bench.err;
  EXPECT_NE(bench.out.find("procs"), std::string::npos);
  // Three data rows.
  int lines = 0;
  for (const char ch : bench.out) lines += ch == '\n';
  EXPECT_GE(lines, 5);
}

TEST(Cli, HelpAndUnknownCommand) {
  CliResult help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);

  CliResult unknown = run({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);

  CliResult none = run({});
  EXPECT_EQ(none.code, 2);
}

TEST(Cli, MissingRequiredFlags) {
  EXPECT_EQ(run({"generate"}).code, 2);
  EXPECT_EQ(run({"train", "--data", "x.csv"}).code, 2);
  EXPECT_EQ(run({"predict", "--model", "m.tree"}).code, 2);
  EXPECT_EQ(run({"inspect"}).code, 2);
}

TEST(Cli, BadEnumValues) {
  CliResult result = run({"train", "--data", "x.csv", "--model", "m.tree",
                          "--criterion", "nonsense"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--criterion"), std::string::npos);
}

TEST(Cli, MissingInputFileIsReportedNotCrash) {
  CliResult result = run({"train", "--data", "/nonexistent/in.csv",
                          "--model", temp_path("never.tree")});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST_F(CliWorkflow, PredictRejectsSchemaMismatch) {
  const std::string csv7 = track(temp_path("cli_7attr.csv"));
  const std::string csv9 = track(temp_path("cli_9attr.csv"));
  const std::string model = track(temp_path("cli_model3.tree"));
  ASSERT_EQ(run({"generate", "--records", "200", "--out", csv7}).code, 0);
  ASSERT_EQ(run({"generate", "--records", "200", "--attributes", "9",
                 "--out", csv9}).code, 0);
  ASSERT_EQ(run({"train", "--data", csv7, "--model", model}).code, 0);
  CliResult predict = run({"predict", "--model", model, "--data", csv9});
  EXPECT_EQ(predict.code, 2);
  EXPECT_NE(predict.err.find("schema"), std::string::npos);
}

}  // namespace
}  // namespace scalparc
