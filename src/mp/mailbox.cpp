#include "mp/mailbox.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace scalparc::mp {

void Channel::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (has_arrival_) {
      arrivals_.record(
          std::chrono::duration<double>(now - last_arrival_).count());
    }
    last_arrival_ = now;
    has_arrival_ = true;
    queue_.push_back(std::move(message));
  }
  ready_.notify_all();
}

bool Channel::take_locked(std::int64_t tag, Message& out) {
  const auto it = std::find_if(queue_.begin(), queue_.end(), [tag](const Message& m) {
    return m.tag == tag;
  });
  if (it == queue_.end()) return false;
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

Message Channel::pop(std::int64_t tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  Message out;
  for (;;) {
    if (take_locked(tag, out)) return out;
    if (poisoned_) throw RankAborted{};
    ready_.wait(lock);
  }
}

Channel::PopStatus Channel::try_pop_until(
    std::int64_t tag, Message& out,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (take_locked(tag, out)) return PopStatus::kOk;
    if (poisoned_) throw RankAborted{};
    if (ready_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look: the message may have landed with the notification
      // racing the deadline.
      if (take_locked(tag, out)) return PopStatus::kOk;
      if (poisoned_) throw RankAborted{};
      return PopStatus::kTimeout;
    }
  }
}

bool Channel::try_pop(std::int64_t tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (take_locked(tag, out)) return true;
  if (poisoned_) throw RankAborted{};
  return false;
}

bool Channel::has_message(std::int64_t tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [tag](const Message& m) { return m.tag == tag; });
}

void Channel::poison() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
  }
  ready_.notify_all();
}

bool Channel::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty();
}

std::size_t Channel::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t undelivered = 0;
  for (const Message& m : queue_) {
    if (m.seq != 0 && accepted_locked(m.seq)) {
      // A stale duplicate (retransmit race or injected duplicate fault) the
      // receiver never needed to look at; absorbed, not lost.
      ++stats_.duplicates;
    } else {
      ++undelivered;
    }
  }
  queue_.clear();
  inflight_.clear();
  return undelivered;
}

std::uint64_t Channel::assign_seq() {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++next_seq_;
}

void Channel::record_inflight(const Message& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_.size() >= inflight_cap_) inflight_.pop_front();
  Inflight copy;
  copy.seq = message.seq;
  copy.tag = message.tag;
  copy.arrival_vtime = message.arrival_vtime;
  copy.crc = message.crc;
  const std::span<const std::byte> bytes = message.payload.bytes();
  copy.bytes.assign(bytes.begin(), bytes.end());
  inflight_.push_back(std::move(copy));
}

void Channel::set_inflight_cap(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_cap_ = cap == 0 ? 1 : cap;
}

bool Channel::accepted_locked(std::uint64_t seq) const {
  return seq <= accepted_watermark_ || accepted_ahead_.count(seq) != 0;
}

bool Channel::discard_if_duplicate(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!accepted_locked(seq)) return false;
  ++stats_.duplicates;
  return true;
}

void Channel::acknowledge(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!accepted_locked(seq)) {
    if (seq == accepted_watermark_ + 1) {
      ++accepted_watermark_;
      while (accepted_ahead_.erase(accepted_watermark_ + 1) != 0) {
        ++accepted_watermark_;
      }
    } else {
      accepted_ahead_.insert(seq);
    }
  }
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if (it->seq == seq) {
      inflight_.erase(it);
      break;
    }
  }
}

void Channel::requeue_locked(const Inflight& copy) {
  Message message;
  message.tag = copy.tag;
  message.seq = copy.seq;
  message.arrival_vtime = copy.arrival_vtime;
  message.crc = copy.crc;
  message.payload = Payload::copy_of(copy.bytes);
  queue_.push_back(std::move(message));
  ++stats_.retransmits;
}

bool Channel::nack_retransmit(std::uint64_t seq) {
  bool requeued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.nacks;
    for (const Inflight& copy : inflight_) {
      if (copy.seq == seq) {
        requeue_locked(copy);
        requeued = true;
        break;
      }
    }
  }
  if (requeued) ready_.notify_all();
  return requeued;
}

bool Channel::request_retransmit(std::int64_t tag) {
  bool requeued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Inflight& copy : inflight_) {
      if (copy.tag != tag || accepted_locked(copy.seq)) continue;
      // A copy whose frame is still queued is merely awaiting its pop; only
      // a vanished (dropped) frame needs retransmission. Spurious requeues
      // would be absorbed by dedupe anyway, but skipping them keeps the
      // retransmit counter an honest measure of healing work.
      const bool queued = std::any_of(
          queue_.begin(), queue_.end(),
          [&copy](const Message& m) { return m.seq == copy.seq; });
      if (queued) continue;
      requeue_locked(copy);
      requeued = true;
      break;
    }
  }
  if (requeued) ready_.notify_all();
  return requeued;
}

bool Channel::can_retransmit(std::int64_t tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(inflight_.begin(), inflight_.end(),
                     [tag](const Inflight& c) { return c.tag == tag; });
}

ChannelStats Channel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool Channel::arrival_primed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return arrivals_.primed();
}

double Channel::arrival_silence_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!has_arrival_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       last_arrival_)
      .count();
}

double Channel::adaptive_timeout_s(double phi_threshold) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return arrivals_.timeout_for_phi(phi_threshold);
}

}  // namespace scalparc::mp
