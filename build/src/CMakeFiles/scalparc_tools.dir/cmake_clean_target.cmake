file(REMOVE_RECURSE
  "libscalparc_tools.a"
)
