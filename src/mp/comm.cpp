#include "mp/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "mp/fault.hpp"
#include "mp/runtime.hpp"
#include "util/crc32.hpp"

namespace scalparc::mp {

namespace {

// How long a receiver waits between deadlock-detector probes. Small enough
// that an injected deadlock resolves promptly, large enough that the probe
// never shows up in profiles of healthy runs.
constexpr std::chrono::milliseconds kRecvSlice{25};

// splitmix64, for deterministic retransmit-backoff jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Backoff with +-25% deterministic jitter so retransmit timers of different
// ranks/tags do not fire in lockstep, yet a fixed run replays identically.
double jittered_ms(double backoff_ms, int rank, std::int64_t tag, int attempt) {
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(rank) << 48 ^
            static_cast<std::uint64_t>(tag) << 8 ^
            static_cast<std::uint64_t>(attempt));
  const double unit = static_cast<double>(h % 1024) / 1024.0;  // [0, 1)
  return backoff_ms * (0.75 + 0.5 * unit);
}

std::chrono::steady_clock::duration duration_from_ms(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Comm::Comm(Hub& hub, int rank, const CostModel& model,
           util::MemoryMeter* meter)
    : hub_(hub), rank_(rank), model_(model), meter_(meter) {
  if (rank < 0 || rank >= hub.size()) {
    throw std::invalid_argument("Comm: rank out of range");
  }
}

int Comm::size() const { return hub_.size(); }

int Comm::prior_world() const { return hub_.options().prior_world; }

void Comm::admit_joiner(int rank) { hub_.admit_joiner(rank); }

std::int64_t Comm::begin_op(const char* what) {
  const std::int64_t op = ++comm_ops_;
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr) {
    const double delay = plan->delay_ms_at_op(rank_, op);
    if (delay > 0.0) {
      plan->count_delay();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
    if (plan->kills_at_op(rank_, op)) {
      plan->count_kill();
      std::ostringstream what_out;
      what_out << "injected fault: rank " << rank_ << " killed at " << what
               << " (op " << op << ")";
      throw InjectedFault(what_out.str());
    }
  }
  return op;
}

void Comm::fault_level_boundary(int level) {
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr && plan->kills_at_level(rank_, level)) {
    plan->count_kill();
    std::ostringstream what_out;
    what_out << "injected fault: rank " << rank_ << " killed at level "
             << level << " boundary";
    throw InjectedFault(what_out.str());
  }
}

void Comm::send_payload(int dst, std::int64_t tag, Payload payload) {
  if (dst < 0 || dst >= size()) {
    throw std::invalid_argument("Comm::send_payload: destination out of range");
  }
  const std::int64_t op = begin_op("send");
  // Sender pays per-message CPU overhead; the message lands at the receiver
  // no earlier than now + wire time.
  vtime_ += model_.send_overhead_s;
  Message message;
  message.tag = tag;
  message.arrival_vtime = vtime_ + model_.wire_seconds(payload.size());
  message.payload = std::move(payload);
  // Frame checksum first, wire faults second: a corrupted payload must be
  // *detected* at the receiver, never silently mis-parsed.
  message.crc = util::crc32(message.payload.bytes());
  stats_.record_send(current_op_, message.payload.size());
  message_bytes_hist_.observe(message.payload.size());
  Channel& channel = hub_.channel(rank_, dst);
  const ReliabilityOptions& reliability = hub_.options().reliability;
  if (reliability.enabled) {
    // Sequence and retain a clean copy *before* wire faults touch the
    // message: whatever the wire does, the receiver can always be given
    // back exactly what was sent.
    message.seq = channel.assign_seq();
    channel.record_inflight(message);
  }
  const FaultPlan* plan = hub_.options().fault_plan;
  bool duplicate = false;
  if (plan != nullptr) {
    if (plan->drops_at_op(rank_, op)) {
      plan->count_drop();
      return;  // the wire ate it
    }
    if (plan->corrupts_at_op(rank_, op)) {
      plan->corrupt_payload(message.payload.mutable_bytes(), rank_, op);
    }
    if (plan->duplicates_at_op(rank_, op)) {
      plan->count_duplicate();
      duplicate = true;
    }
  }
  if (duplicate) {
    Message copy;
    copy.tag = message.tag;
    copy.seq = message.seq;
    copy.arrival_vtime = message.arrival_vtime;
    copy.crc = message.crc;
    copy.payload = Payload::copy_of(message.payload.bytes());
    channel.push(std::move(copy));
  }
  channel.push(std::move(message));
}

Payload Comm::recv_payload(int src, std::int64_t tag) {
  if (src < 0 || src >= size()) {
    throw std::invalid_argument("Comm::recv_payload: source out of range");
  }
  begin_op("recv");
  Channel& channel = hub_.channel(src, rank_);
  const RunOptions& options = hub_.options();
  const ReliabilityOptions& reliability = options.reliability;
  using clock = std::chrono::steady_clock;

  // Lazily initialized slow-path state, shared across protocol retries: the
  // overall timeout spans the whole logical receive, not one wire frame.
  bool waiting = false;
  bool bounded = false;
  clock::time_point overall_deadline = clock::time_point::max();
  clock::time_point next_retransmit = clock::time_point::max();
  double backoff_ms = reliability.backoff_ms;
  // Heal attempts charged against reliability.max_retransmits: nacks raised
  // plus timer-driven retransmit requests that actually re-queued a copy.
  int heal_attempts = 0;
  int heals_performed = 0;
  struct Unmark {
    Hub* hub = nullptr;
    int rank = 0;
    ~Unmark() {
      if (hub != nullptr) hub->mark_unblocked(rank);
    }
  } unmark;

  Message message;
  for (;;) {
    bool got = channel.try_pop(tag, message);
    if (!got) {
      if (!waiting) {
        waiting = true;
        const clock::time_point start = clock::now();
        bounded = options.recv_timeout_s > 0.0;
        if (bounded) {
          overall_deadline =
              start + std::chrono::duration_cast<clock::duration>(
                          std::chrono::duration<double>(options.recv_timeout_s));
        }
        if (reliability.enabled) {
          next_retransmit =
              start + duration_from_ms(
                          jittered_ms(backoff_ms, rank_, tag, heal_attempts));
        }
        hub_.mark_blocked(rank_, src, tag);
        unmark.hub = &hub_;
        unmark.rank = rank_;
      }
      // Block in bounded slices; after each expired slice fire the
      // retransmit timer if due, then consult the deadlock detector and the
      // overall per-receive timeout.
      for (;;) {
        clock::time_point slice = clock::now() + kRecvSlice;
        if (slice > overall_deadline) slice = overall_deadline;
        if (slice > next_retransmit) slice = next_retransmit;
        if (channel.try_pop_until(tag, message, slice) ==
            Channel::PopStatus::kOk) {
          got = true;
          break;
        }
        const clock::time_point now = clock::now();
        if (reliability.enabled && now >= next_retransmit) {
          ++backoff_waits_;
          if (heal_attempts < reliability.max_retransmits) {
            // The awaited frame is overdue: if the sender side still holds a
            // clean unacknowledged copy for this tag, re-queue it (the frame
            // was dropped); if not, the sender simply has not sent yet.
            if (channel.request_retransmit(tag)) {
              ++heal_attempts;
              ++heals_performed;
            }
            backoff_ms = std::min(backoff_ms * 2.0, reliability.backoff_cap_ms);
            next_retransmit =
                now + duration_from_ms(
                          jittered_ms(backoff_ms, rank_, tag, heal_attempts));
          } else {
            // Budget spent: hand authority back to the deadlock detector
            // (its probe otherwise assumes this receiver will keep healing).
            hub_.mark_heal_exhausted(rank_);
            next_retransmit = clock::time_point::max();
          }
        }
        if (options.detect_deadlock) {
          ++deadlock_probes_;
          const std::string diag = hub_.deadlock_diagnostic();
          if (!diag.empty()) {
            // Last poison-aware look: if the run was already poisoned (a
            // peer died between our probe and its registration) unwind as a
            // secondary RankAborted instead of a phantom primary failure.
            if (channel.try_pop(tag, message)) {
              got = true;
              break;
            }
            hub_.poison_all();
            throw DeadlockDetected(diag);
          }
        }
        if (bounded && clock::now() >= overall_deadline) {
          std::ostringstream what_out;
          what_out << "recv timeout: rank " << rank_ << " waited "
                   << options.recv_timeout_s << "s for recv(src=" << src
                   << ", tag=" << tag << ")";
          hub_.poison_all();
          throw RecvTimeout(what_out.str());
        }
      }
    }

    // Protocol checks. Dedupe strictly before CRC: a duplicate of an
    // already-accepted frame is discarded even if the wire mangled it, and a
    // seq must only be marked accepted once its frame passes the checksum
    // (a nacked frame's retransmission carries the same seq).
    if (reliability.enabled && message.seq != 0 &&
        channel.discard_if_duplicate(message.seq)) {
      continue;
    }
    if (message.crc != util::crc32(message.payload.bytes())) {
      if (reliability.enabled && message.seq != 0 &&
          heal_attempts < reliability.max_retransmits &&
          channel.nack_retransmit(message.seq)) {
        ++heal_attempts;
        ++heals_performed;
        continue;
      }
      std::ostringstream what_out;
      what_out << "corrupt message: rank " << rank_ << " recv(src=" << src
               << ", tag=" << tag << ", bytes=" << message.payload.size()
               << ") failed its CRC32 frame checksum";
      throw CorruptMessage(what_out.str());
    }
    // Leave the liveness registry *before* acknowledging: the ack drops the
    // sender's retransmittable copy, so a deadlock probe sampling between the
    // ack and the guard's unmark would see this rank blocked with nothing
    // deliverable — a phantom deadlock under heavy CPU oversubscription.
    if (unmark.hub != nullptr) {
      hub_.mark_unblocked(rank_);
      unmark.hub = nullptr;
    }
    if (reliability.enabled && message.seq != 0) {
      channel.acknowledge(message.seq);
    }
    if (message.arrival_vtime > vtime_) vtime_ = message.arrival_vtime;
    // Each heal cost a modeled control round trip on top of the original
    // arrival time (request or nack out, clean copy back).
    if (heals_performed > 0) {
      vtime_ += static_cast<double>(heals_performed) *
                (2.0 * model_.latency_s + model_.send_overhead_s);
    }
    heals_ += static_cast<std::uint64_t>(heals_performed);
    stats_.record_receive(message.payload.size());
    return std::move(message.payload);
  }
}

}  // namespace scalparc::mp
