# Empty compiler generated dependencies file for scalparc_ooc.
# This may be replaced when dependencies are built.
