// LogP-style linear communication/computation cost model.
//
// The paper benchmarks the Cray T3D's tuned MPI "assuming a linear model of
// communication": a fixed latency plus a per-byte bandwidth term for
// point-to-point messages, and a per-processor latency for all-to-all
// collectives. We reproduce timing the same way: every rank carries a
// virtual clock; computation advances it by (work units x seconds/unit),
// every message advances the receiver to
//   max(receiver_clock, sender_clock_at_send + latency + bytes/bandwidth)
// and synchronizing collectives align all clocks to the participant maximum.
// All-to-all built from p-1 buffered sends naturally costs
// O(p x overhead + bytes/bandwidth) per rank — the paper's observed shape.
//
// Calibration (documented substitution, see DESIGN.md §2): the OCR of the
// paper garbles the exact constants; we use values consistent with published
// Cray T3D MPI measurements of that era:
//   point-to-point latency ~30 us, bandwidth ~35 MB/s,
//   per-message CPU overhead ~10 us,
//   per-processor all-to-all overhead ~20 us (emerges from p-1 sends),
//   ~150 MHz Alpha EV4 compute: 0.25 us per record-field visit.
// Only the *shape* of the curves depends on these, not correctness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace scalparc::mp {

struct CostModel {
  // CPU time a rank spends injecting one message (serializes its sends).
  double send_overhead_s = 10e-6;
  // Wire latency added to every message.
  double latency_s = 30e-6;
  // Inverse bandwidth.
  double seconds_per_byte = 1.0 / (35.0 * 1024.0 * 1024.0);
  // One work unit = one record-field visit in the induction loops.
  double seconds_per_work_unit = 0.25e-6;
  // Barrier/clock-sync cost per ceil(log2 p) round.
  double barrier_round_s = 25e-6;
  // When set, add_work also sleeps the calling thread for the modeled
  // duration (in addition to advancing the virtual clock), so wall-clock
  // measurements — and wall-clock throttles like the `slow` fault — see the
  // modeled compute. Off by default: virtual time only.
  bool realize_work = false;

  // Modeled in-flight time for a message of `bytes` payload.
  double wire_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) * seconds_per_byte;
  }

  // The calibration used for all paper-reproduction benches.
  static CostModel cray_t3d() { return CostModel{}; }

  // All-zero model: virtual time stays 0. Useful in unit tests that assert
  // on functional behavior only.
  static CostModel zero() {
    CostModel m;
    m.send_overhead_s = 0.0;
    m.latency_s = 0.0;
    m.seconds_per_byte = 0.0;
    m.seconds_per_work_unit = 0.0;
    m.barrier_round_s = 0.0;
    return m;
  }
};

// Analytic per-level, per-rank byte predictors for the three split-finding
// modes (see DESIGN.md, "Split modes"). These are the closed-form comm-cost
// expressions the design argues from:
//
//   exact      ~ O(active_records / p)          — node-table traffic
//   histogram  ~ O(attrs x bins x classes)      — independent of N
//   voting     ~ O(2k x bins x classes)         — independent of N and attrs
//
// The quantized predictors enumerate the actual packed allreduce segments of
// the histogram engine (range merge, counts, bin minima, categorical count
// matrices, vote tallies, split candidates, child class counts) times the
// ceil(log2 p) recursive-doubling rounds, so they land within a few percent
// of measurement. The exact-engine predictor is a calibrated shape, not an
// enumeration: its traffic is the all-to-all hash-table probe/update stream,
// of which a (1 - 1/p) fraction leaves the rank. bench/comm_model prints
// all three against measured values.
struct SplitCommModel {
  int procs = 1;
  int classes = 2;
  int hist_bins = 64;
  int top_k = 2;
  int cont_attrs = 0;
  // Sum of categorical cardinalities across categorical attributes.
  int cat_cardinality_sum = 0;
  int cat_attrs = 0;

  // Calibrated against bench/level_comm at p in [2, 16]: per active record,
  // the exact engine's probe/update stream plus split-determination counts
  // average ~64 bytes on the wire.
  static constexpr double kExactBytesPerRecord = 64.0;
  // sizeof the SplitCandidate min-allreduce payload per node.
  static constexpr double kCandidateBytes = 48.0;

  static int allreduce_rounds(int p) {
    int rounds = 0;
    for (int span = 1; span < p; span *= 2) ++rounds;
    return rounds;
  }

  int num_attrs() const { return cont_attrs + cat_attrs; }

  // Exact engine: O(N/p) — grows with the training set.
  double exact_level_bytes(std::int64_t active_records) const {
    const double per_rank =
        static_cast<double>(active_records) / static_cast<double>(procs);
    return per_rank * (1.0 - 1.0 / static_cast<double>(procs)) *
           kExactBytesPerRecord;
  }

  // One active node's worth of merged histogram state: per continuous
  // attribute a (bins x classes) int64 count grid, a bins-wide double
  // bin-minimum vector and a 16-byte value range; per categorical attribute
  // its (cardinality x classes) count matrix; plus the split candidate and
  // the child class counts that grow the tree.
  double histogram_node_bytes() const {
    const double cont = static_cast<double>(cont_attrs) *
                        (static_cast<double>(hist_bins) * classes * 8.0 +
                         static_cast<double>(hist_bins) * 8.0 + 16.0);
    const double cat = static_cast<double>(cat_cardinality_sum) * classes * 8.0;
    const double growth = kCandidateBytes + 2.0 * classes * 8.0;
    return cont + cat + growth;
  }

  // Histogram mode: O(attrs x bins) per node per round — flat in N.
  double histogram_level_bytes(std::int64_t active_nodes) const {
    return static_cast<double>(allreduce_rounds(procs)) *
           static_cast<double>(active_nodes) * histogram_node_bytes();
  }

  // Voting mode: only min(2k, attrs) elected attributes are merged per node
  // (modeled as a proportional shrink of the per-node payload — elections
  // mix continuous and categorical attributes per node), plus the one-int32
  // per (attr, node) vote tally round.
  double voting_level_bytes(std::int64_t active_nodes) const {
    const int attrs = num_attrs();
    if (attrs == 0) return 0.0;
    const double elected_fraction =
        static_cast<double>(std::min(2 * top_k, attrs)) /
        static_cast<double>(attrs);
    const double votes = static_cast<double>(attrs) * 4.0;
    return static_cast<double>(allreduce_rounds(procs)) *
           static_cast<double>(active_nodes) *
           (histogram_node_bytes() * elected_fraction + votes);
  }
};

}  // namespace scalparc::mp
