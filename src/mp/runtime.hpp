// Thread-backed SPMD runtime: spawns one thread per rank, runs the supplied
// body on each, and collects per-rank statistics, memory peaks and modeled
// time. This substitutes for "MPI on the Cray T3D" (see DESIGN.md §2):
// ranks share nothing except messages, so communication volume and pattern
// match a true distributed-memory run.
//
// Failure semantics: a rank that throws poisons every channel, so peers
// blocked in recv unwind with RankAborted. try_run_ranks reports which rank
// failed first (and with what message) instead of rethrowing; run_ranks
// keeps the throwing contract. Every blocking receive is bounded by the
// RunOptions timeout and an all-ranks-blocked deadlock detector, so a lost
// message or an injected deadlock terminates with a diagnostic instead of
// hanging the process. An optional FaultPlan injects deterministic crashes,
// payload corruption, delays and message drops (see mp/fault.hpp).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mp/comm.hpp"
#include "mp/costmodel.hpp"
#include "mp/mailbox.hpp"
#include "mp/stats.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::mp {

class FaultPlan;  // mp/fault.hpp

struct RunOptions {
  // Faults to inject; nullptr runs clean. Must outlive the run.
  const FaultPlan* fault_plan = nullptr;
  // Per-receive wall-clock timeout in seconds; <= 0 disables. Generous by
  // default: it exists so a lost message can never hang ctest forever even
  // if the deadlock detector is switched off.
  double recv_timeout_s = 120.0;
  // Abort with a per-rank diagnostic as soon as every unfinished rank is
  // blocked in a receive with no deliverable message.
  bool detect_deadlock = true;
};

// Shared state between the ranks of one run: the p x p channel matrix plus
// the per-rank wait registry backing the deadlock detector.
class Hub {
 public:
  explicit Hub(int nranks, const RunOptions& options = {});

  int size() const { return nranks_; }
  const RunOptions& options() const { return options_; }

  // Channel carrying messages from `src` to `dst`.
  Channel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(nranks_) +
                     static_cast<std::size_t>(dst)];
  }

  // True when every channel has been drained (sanity check after a run).
  bool all_channels_empty() const;

  // Removes every queued message; returns how many were discarded. Called
  // in run teardown so an aborted run cannot leak undelivered messages.
  std::size_t drain_all_channels();

  // Aborts the run: wakes every blocked receiver with RankAborted.
  void poison_all();

  // --- deadlock detection ---------------------------------------------
  // Ranks register what they are blocked on; a rank whose wait slice
  // expires asks for a diagnostic. Non-empty result means the run is
  // provably stuck: every unfinished rank is blocked and none of their
  // awaited messages is queued (sends are buffered, so no new message can
  // ever appear).
  void mark_blocked(int rank, int src, std::int64_t tag);
  void mark_unblocked(int rank);
  void mark_finished(int rank);
  std::string deadlock_diagnostic();

 private:
  struct WaitState {
    bool blocked = false;
    bool finished = false;
    int src = -1;
    std::int64_t tag = 0;
  };

  int nranks_;
  RunOptions options_;
  std::vector<Channel> channels_;
  std::mutex wait_mutex_;
  std::vector<WaitState> waits_;
  int unfinished_ = 0;
};

struct RankOutcome {
  CommStats stats;
  util::MemoryMeter meter;
  double vtime_seconds = 0.0;
};

struct RunResult {
  // Modeled parallel runtime: max over ranks of the final virtual clock.
  double modeled_seconds = 0.0;
  // Actual wall-clock time of the threaded run (noisy when oversubscribed).
  double wall_seconds = 0.0;
  std::vector<RankOutcome> ranks;

  // Failure report (try_run_ranks): first rank whose body threw a primary
  // error, -1 for a clean run. Ranks that merely unwound with RankAborted
  // after a peer's failure are not reported.
  int failed_rank = -1;
  std::string failure_message;
  std::exception_ptr error;
  // Messages discarded from the channels during teardown (non-zero only
  // after an aborted run).
  std::size_t undelivered_messages = 0;

  bool failed() const { return failed_rank >= 0; }

  CommStats total_stats() const;
  std::size_t max_peak_bytes_per_rank() const;
  std::uint64_t max_bytes_sent_per_rank() const;
};

// Runs `body(comm)` on `nranks` ranks. Never rethrows a rank's exception:
// inspect RunResult::failed()/failed_rank/error instead. A clean run with
// undelivered messages still throws std::logic_error (protocol bug).
RunResult try_run_ranks(int nranks, const CostModel& model,
                        const std::function<void(Comm&)>& body,
                        const RunOptions& options = {});

// Runs `body(comm)` on `nranks` ranks and returns the aggregated result.
// Any exception thrown by a rank is rethrown on the calling thread after all
// ranks have been joined.
RunResult run_ranks(int nranks, const CostModel& model,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options = {});

}  // namespace scalparc::mp
