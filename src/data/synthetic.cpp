#include "data/synthetic.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::data {

namespace {

bool in_range(double x, double lo, double hi) { return lo <= x && x <= hi; }

// Age band index: 0 = under 40, 1 = 40..59, 2 = 60 and over. All of F2-F5
// are defined over these three bands.
int age_band(double age) {
  if (age < 40.0) return 0;
  if (age < 60.0) return 1;
  return 2;
}

}  // namespace

LabelFunction parse_label_function(const std::string& name) {
  if (name == "F1" || name == "f1" || name == "1") return LabelFunction::kF1;
  if (name == "F2" || name == "f2" || name == "2") return LabelFunction::kF2;
  if (name == "F3" || name == "f3" || name == "3") return LabelFunction::kF3;
  if (name == "F4" || name == "f4" || name == "4") return LabelFunction::kF4;
  if (name == "F5" || name == "f5" || name == "5") return LabelFunction::kF5;
  if (name == "F6" || name == "f6" || name == "6") return LabelFunction::kF6;
  if (name == "F7" || name == "f7" || name == "7") return LabelFunction::kF7;
  if (name == "F8" || name == "f8" || name == "8") return LabelFunction::kF8;
  if (name == "F9" || name == "f9" || name == "9") return LabelFunction::kF9;
  if (name == "F10" || name == "f10" || name == "10") return LabelFunction::kF10;
  throw std::invalid_argument("unknown label function: " + name);
}

std::int32_t quest_label(const QuestRecord& r, LabelFunction function) {
  bool group_a = false;
  switch (function) {
    case LabelFunction::kF1:
      group_a = r.age < 40.0 || r.age >= 60.0;
      break;
    case LabelFunction::kF2: {
      static constexpr double kLo[3] = {50e3, 75e3, 25e3};
      static constexpr double kHi[3] = {100e3, 125e3, 75e3};
      const int b = age_band(r.age);
      group_a = in_range(r.salary, kLo[b], kHi[b]);
      break;
    }
    case LabelFunction::kF3: {
      static constexpr int kELo[3] = {0, 1, 2};
      static constexpr int kEHi[3] = {1, 3, 4};
      const int b = age_band(r.age);
      group_a = r.elevel >= kELo[b] && r.elevel <= kEHi[b];
      break;
    }
    case LabelFunction::kF4: {
      // Per age band: if elevel falls in the band's "inner" education range,
      // one salary window applies, otherwise another.
      static constexpr int kELo[3] = {0, 1, 2};
      static constexpr int kEHi[3] = {1, 3, 4};
      static constexpr double kInLo[3] = {25e3, 50e3, 50e3};
      static constexpr double kInHi[3] = {75e3, 100e3, 100e3};
      static constexpr double kOutLo[3] = {50e3, 75e3, 25e3};
      static constexpr double kOutHi[3] = {100e3, 125e3, 75e3};
      const int b = age_band(r.age);
      const bool inner = r.elevel >= kELo[b] && r.elevel <= kEHi[b];
      group_a = inner ? in_range(r.salary, kInLo[b], kInHi[b])
                      : in_range(r.salary, kOutLo[b], kOutHi[b]);
      break;
    }
    case LabelFunction::kF5: {
      // Per age band: the salary window selects which loan window applies.
      static constexpr double kSLo[3] = {50e3, 75e3, 25e3};
      static constexpr double kSHi[3] = {100e3, 125e3, 75e3};
      static constexpr double kInLo[3] = {100e3, 200e3, 300e3};
      static constexpr double kInHi[3] = {300e3, 400e3, 500e3};
      static constexpr double kOutLo[3] = {200e3, 300e3, 100e3};
      static constexpr double kOutHi[3] = {400e3, 500e3, 300e3};
      const int b = age_band(r.age);
      const bool inner = in_range(r.salary, kSLo[b], kSHi[b]);
      group_a = inner ? in_range(r.loan, kInLo[b], kInHi[b])
                      : in_range(r.loan, kOutLo[b], kOutHi[b]);
      break;
    }
    case LabelFunction::kF6: {
      static constexpr double kLo[3] = {50e3, 75e3, 25e3};
      static constexpr double kHi[3] = {100e3, 125e3, 75e3};
      const int b = age_band(r.age);
      group_a = in_range(r.salary + r.commission, kLo[b], kHi[b]);
      break;
    }
    case LabelFunction::kF7:
      group_a = 0.67 * (r.salary + r.commission) - 0.2 * r.loan - 20e3 > 0.0;
      break;
    case LabelFunction::kF8:
      // Disposable income with an education penalty.
      group_a = (2.0 / 3.0) * (r.salary + r.commission) -
                    5000.0 * static_cast<double>(r.elevel) - 20e3 >
                0.0;
      break;
    case LabelFunction::kF9:
      // As F8 plus the outstanding loan.
      group_a = (2.0 / 3.0) * (r.salary + r.commission) -
                    5000.0 * static_cast<double>(r.elevel) - 0.2 * r.loan -
                    10e3 >
                0.0;
      break;
    case LabelFunction::kF10: {
      // Home equity accrues after 20 years of ownership. The offset is
      // chosen so both groups are well represented under the generator's
      // attribute distributions.
      const double equity =
          0.1 * r.hvalue * std::max(r.hyears - 20.0, 0.0);
      group_a = (2.0 / 3.0) * (r.salary + r.commission) -
                    5000.0 * static_cast<double>(r.elevel) + 0.2 * equity -
                    50e3 >
                0.0;
      break;
    }
  }
  return group_a ? 1 : 0;
}

QuestGenerator::QuestGenerator(GeneratorConfig config) : config_(config) {
  if (config_.num_attributes < 1 || config_.num_attributes > 9) {
    throw std::invalid_argument("QuestGenerator: num_attributes must be 1..9");
  }
  if (config_.label_noise < 0.0 || config_.label_noise > 1.0) {
    throw std::invalid_argument("QuestGenerator: label_noise must be in [0,1]");
  }
  const std::vector<AttributeInfo> all = {
      Schema::continuous("salary"),
      Schema::continuous("commission"),
      Schema::continuous("age"),
      Schema::categorical("elevel", 5),
      Schema::categorical("car", 20),
      Schema::categorical("zipcode", 9),
      Schema::continuous("hvalue"),
      Schema::continuous("hyears"),
      Schema::continuous("loan"),
  };
  schema_ = Schema(
      std::vector<AttributeInfo>(all.begin(),
                                 all.begin() + config_.num_attributes),
      /*num_classes=*/2);
}

util::Rng QuestGenerator::record_rng(std::uint64_t rid) const {
  // Two rounds of SplitMix over (seed, rid) give well-separated streams.
  std::uint64_t s = config_.seed;
  (void)util::splitmix64(s);
  s ^= 0x9E3779B97F4A7C15ULL * (rid + 1);
  return util::Rng(util::splitmix64(s));
}

QuestRecord QuestGenerator::raw(std::uint64_t rid) const {
  util::Rng rng = record_rng(rid);
  QuestRecord r;
  r.salary = rng.next_double(20e3, 150e3);
  const double commission_draw = rng.next_double(10e3, 75e3);
  r.commission = r.salary >= 75e3 ? 0.0 : commission_draw;
  r.age = rng.next_double(20.0, 80.0);
  r.elevel = static_cast<std::int32_t>(rng.next_int(0, 4));
  r.car = static_cast<std::int32_t>(rng.next_int(0, 19));
  r.zipcode = static_cast<std::int32_t>(rng.next_int(0, 8));
  const double k = static_cast<double>(r.zipcode + 1);
  r.hvalue = rng.next_double(k * 50e3, k * 150e3);
  r.hyears = rng.next_double(1.0, 30.0);
  r.loan = rng.next_double(0.0, 500e3);
  return r;
}

std::int32_t QuestGenerator::clean_label(std::uint64_t rid) const {
  return quest_label(raw(rid), config_.function);
}

std::int32_t QuestGenerator::label(std::uint64_t rid) const {
  std::int32_t y = clean_label(rid);
  if (config_.label_noise > 0.0) {
    // Separate stream from the attribute draws so adding noise never
    // perturbs attribute values.
    std::uint64_t s = config_.seed ^ 0xC0FFEE123456789ULL;
    s += rid * 0xD1B54A32D192ED03ULL;
    util::Rng rng(util::splitmix64(s));
    if (rng.next_bool(config_.label_noise)) y = 1 - y;
  }
  return y;
}

void QuestGenerator::fill(Dataset& out, std::uint64_t first_rid,
                          std::size_t count) const {
  if (!(out.schema() == schema_)) {
    throw std::invalid_argument("QuestGenerator::fill: schema mismatch");
  }
  std::vector<double> cont(static_cast<std::size_t>(schema_.num_continuous()));
  std::vector<std::int32_t> cat(static_cast<std::size_t>(schema_.num_categorical()));
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t rid = first_rid + i;
    const QuestRecord r = raw(rid);
    const double all_cont[] = {r.salary, r.commission, r.age,
                               r.hvalue, r.hyears,     r.loan};
    const std::int32_t all_cat[] = {r.elevel, r.car, r.zipcode};
    // Attribute order is salary, commission, age, elevel, car, zipcode,
    // hvalue, hyears, loan; slot the prefix into kind-specific arrays.
    std::size_t c = 0;
    std::size_t g = 0;
    for (int a = 0; a < schema_.num_attributes(); ++a) {
      if (schema_.attribute(a).kind == AttributeKind::kContinuous) {
        cont[c] = all_cont[c];
        ++c;
      } else {
        cat[g] = all_cat[g];
        ++g;
      }
    }
    out.append(std::span<const double>(cont.data(), c),
               std::span<const std::int32_t>(cat.data(), g), label(rid));
  }
}

Dataset QuestGenerator::generate(std::uint64_t first_rid,
                                 std::size_t count) const {
  Dataset out(schema_);
  fill(out, first_rid, count);
  return out;
}

}  // namespace scalparc::data
