// Compiled flat-tree inference suite (`ctest -L predict`): differential
// equivalence against the recursive DecisionTree walk (the oracle), the
// unseen-categorical and out-of-range fallbacks, degenerate tree shapes,
// batch edge cases, hot-swap under concurrent scoring, the predict.*
// telemetry family, and the per-class precision/recall/f1 extensions of
// ConfusionMatrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/compiled_tree.hpp"
#include "core/predict.hpp"
#include "core/scalparc.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "mp/collectives.hpp"
#include "mp/runtime.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

core::DecisionTree quest_tree(data::LabelFunction function, int records = 500,
                              int ranks = 2) {
  data::GeneratorConfig config;
  config.seed = 23;
  config.function = function;
  const data::QuestGenerator generator(config);
  return core::ScalParC::fit(generator.generate(0, records), ranks).tree;
}

data::Dataset quest_holdout(data::LabelFunction function, std::size_t count) {
  data::GeneratorConfig config;
  config.seed = 23;
  config.function = function;
  const data::QuestGenerator generator(config);
  return generator.generate(500000, count);
}

// A single-leaf tree that predicts `label` for every record.
core::DecisionTree constant_tree(const data::Schema& schema,
                                 std::int32_t label) {
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = true;
  root.majority_class = label;
  root.num_records = 1;
  root.class_counts.assign(static_cast<std::size_t>(schema.num_classes()), 0);
  root.class_counts[static_cast<std::size_t>(label)] = 1;
  tree.add_node(root);
  return tree;
}

// ---------------------------------------------------------------------------
// Differential equivalence: compiled == recursive, row for row
// ---------------------------------------------------------------------------

class CompiledDifferential
    : public ::testing::TestWithParam<data::LabelFunction> {};

INSTANTIATE_TEST_SUITE_P(QuestFunctions, CompiledDifferential,
                         ::testing::Values(data::LabelFunction::kF1,
                                           data::LabelFunction::kF2,
                                           data::LabelFunction::kF3,
                                           data::LabelFunction::kF5,
                                           data::LabelFunction::kF6,
                                           data::LabelFunction::kF7));

TEST_P(CompiledDifferential, MatchesRecursiveOnHoldout) {
  const core::DecisionTree tree = quest_tree(GetParam());
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout = quest_holdout(GetParam(), 1500);
  const std::vector<std::int32_t> batch = compiled.predict_all(holdout);
  ASSERT_EQ(batch.size(), holdout.num_records());
  for (std::size_t row = 0; row < holdout.num_records(); ++row) {
    ASSERT_EQ(batch[row], tree.predict(holdout, row)) << "row " << row;
    // The single-row flat walk must agree too.
    ASSERT_EQ(compiled.predict(holdout, row), batch[row]) << "row " << row;
  }
}

TEST(CompiledTree, CompileRecordsShapeMetadata) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF6);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  EXPECT_EQ(compiled.source_nodes(), tree.num_nodes());
  // Every categorical split synthesizes exactly one fallback leaf.
  EXPECT_GE(compiled.num_nodes(), tree.num_nodes());
  EXPECT_GT(compiled.depth(), 0);
  EXPECT_GT(compiled.payload_bytes(), 0u);
  EXPECT_FALSE(compiled.empty());
}

TEST(CompiledTree, ChunkBoundaryIsSeamless) {
  // Batches straddling the internal kChunk row grouping must not perturb
  // results: compare a one-call whole-dataset batch against predict row by
  // row on a holdout larger than kChunk.
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF2);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout =
      quest_holdout(data::LabelFunction::kF2, core::CompiledTree::kChunk + 137);
  const std::vector<std::int32_t> batch = compiled.predict_all(holdout);
  for (std::size_t row = 0; row < holdout.num_records(); ++row) {
    ASSERT_EQ(batch[row], tree.predict(holdout, row)) << "row " << row;
  }
}

// ---------------------------------------------------------------------------
// Categorical fallbacks and awkward values
// ---------------------------------------------------------------------------

// A root categorical split over cardinality 4 where codes 2 and 3 were
// unseen during training (value_to_child slot -1), children are constant
// leaves 0 / 1, and the root majority is class 1.
core::DecisionTree unseen_value_tree() {
  data::Schema schema({data::Schema::categorical("color", 4)}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = false;
  root.num_records = 10;
  root.majority_class = 1;
  root.class_counts = {4, 6};
  root.split.attribute = 0;
  root.split.kind = data::AttributeKind::kCategorical;
  root.split.num_children = 2;
  root.split.value_to_child = {0, 1, -1, -1};
  tree.add_node(root);
  core::TreeNode leaf0;
  leaf0.is_leaf = true;
  leaf0.depth = 1;
  leaf0.majority_class = 0;
  leaf0.num_records = 4;
  leaf0.class_counts = {4, 0};
  core::TreeNode leaf1 = leaf0;
  leaf1.majority_class = 1;
  leaf1.class_counts = {0, 6};
  leaf1.num_records = 6;
  tree.node(0).children = {tree.add_node(leaf0), tree.add_node(leaf1)};
  return tree;
}

TEST(CompiledTree, UnseenCategoricalValueFallsBackToMajority) {
  const core::DecisionTree tree = unseen_value_tree();
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  data::Dataset rows(tree.schema());
  for (const std::int32_t code : {0, 1, 2, 3}) {
    rows.append({}, std::span<const std::int32_t>(&code, 1), 0);
  }
  const std::vector<std::int32_t> got = compiled.predict_all(rows);
  // Seen codes route to their leaves; unseen codes take the root majority.
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 1);
  for (std::size_t row = 0; row < rows.num_records(); ++row) {
    EXPECT_EQ(got[row], tree.predict(rows, row)) << "row " << row;
  }
}

TEST(CompiledTree, OutOfRangeCategoricalCodeFallsBackToMajority) {
  // Codes outside [0, cardinality) — negative or past the declared domain —
  // must take the same majority fallback as the recursive walk, not index
  // out of the arena.
  const core::DecisionTree tree = unseen_value_tree();
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  data::Dataset rows(tree.schema());
  for (const std::int32_t code : {-1, -7, 4, 99}) {
    rows.append({}, std::span<const std::int32_t>(&code, 1), 0);
  }
  const std::vector<std::int32_t> got = compiled.predict_all(rows);
  for (std::size_t row = 0; row < rows.num_records(); ++row) {
    EXPECT_EQ(got[row], 1) << "row " << row;
    EXPECT_EQ(got[row], tree.predict(rows, row)) << "row " << row;
  }
}

TEST(CompiledTree, NanContinuousValueMatchesRecursive) {
  // NaN compares false against any threshold, so both walks must send it to
  // the >= child at every continuous split.
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF2);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  data::Dataset holdout = quest_holdout(data::LabelFunction::kF2, 8);
  data::Dataset rows(tree.schema());
  const int num_cont = tree.schema().num_continuous();
  const int num_cat = tree.schema().num_categorical();
  std::vector<double> cont(static_cast<std::size_t>(num_cont),
                           std::numeric_limits<double>::quiet_NaN());
  std::vector<std::int32_t> cat(static_cast<std::size_t>(num_cat), 0);
  rows.append(cont, cat, 0);
  EXPECT_EQ(compiled.predict(rows, 0), tree.predict(rows, 0));
  EXPECT_EQ(compiled.predict_all(rows)[0], tree.predict(rows, 0));
}

// ---------------------------------------------------------------------------
// Degenerate tree shapes and batch edges
// ---------------------------------------------------------------------------

TEST(CompiledTree, DeepDegenerateChainMatchesRecursive) {
  // A left-leaning chain 60 levels deep: every internal node splits x at a
  // descending threshold, the right child is a leaf. The batch evaluator
  // must sweep the full depth without losing rows parked early on leaves.
  constexpr int kDepth = 60;
  data::Schema schema({data::Schema::continuous("x")}, 2);
  core::DecisionTree tree(schema);
  for (int level = 0; level < kDepth; ++level) {
    core::TreeNode node;
    node.is_leaf = false;
    node.depth = level;
    node.num_records = 2;
    node.class_counts = {1, 1};
    node.majority_class = level % 2;
    node.split.attribute = 0;
    node.split.kind = data::AttributeKind::kContinuous;
    node.split.threshold = static_cast<double>(kDepth - level);
    node.split.num_children = 2;
    tree.add_node(node);
  }
  core::TreeNode leaf;
  leaf.is_leaf = true;
  leaf.num_records = 1;
  leaf.class_counts = {1, 0};
  for (int level = 0; level < kDepth; ++level) {
    core::TreeNode below = leaf;
    below.depth = level + 1;
    below.majority_class = 0;
    core::TreeNode above = leaf;
    above.depth = level + 1;
    above.majority_class = 1;
    above.class_counts = {0, 1};
    const int below_id =
        level + 1 < kDepth ? -1 : tree.add_node(below);  // chain continues
    const int above_id = tree.add_node(above);
    tree.node(level).children = {below_id < 0 ? level + 1 : below_id, above_id};
  }
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  EXPECT_EQ(compiled.depth(), kDepth);
  data::Dataset rows(schema);
  for (double x = -1.0; x < static_cast<double>(kDepth) + 2.0; x += 0.5) {
    rows.append(std::span<const double>(&x, 1), {}, 0);
  }
  const std::vector<std::int32_t> got = compiled.predict_all(rows);
  for (std::size_t row = 0; row < rows.num_records(); ++row) {
    ASSERT_EQ(got[row], tree.predict(rows, row)) << "row " << row;
  }
}

TEST(CompiledTree, SingleLeafTreePredictsItsMajority) {
  data::Schema schema({data::Schema::continuous("x")}, 3);
  const core::DecisionTree tree = constant_tree(schema, 2);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  EXPECT_EQ(compiled.depth(), 0);
  data::Dataset rows(schema);
  for (const double x : {-1.0, 0.0, 7.5}) {
    rows.append(std::span<const double>(&x, 1), {}, 0);
  }
  for (const std::int32_t label : compiled.predict_all(rows)) {
    EXPECT_EQ(label, 2);
  }
}

TEST(CompiledTree, EmptyBatchIsANoOp) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF1);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout = quest_holdout(data::LabelFunction::kF1, 16);
  std::vector<std::int32_t> out;
  EXPECT_NO_THROW(compiled.predict_batch(holdout, 5, 5, out));
  EXPECT_NO_THROW(compiled.predict_batch(holdout, 0, 0, out));
}

TEST(CompiledTree, SingleRecordBatch) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF1);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout = quest_holdout(data::LabelFunction::kF1, 16);
  std::int32_t label = -1;
  compiled.predict_batch(holdout, 7, 8, std::span<std::int32_t>(&label, 1));
  EXPECT_EQ(label, tree.predict(holdout, 7));
}

TEST(CompiledTree, RejectsBadBatchArguments) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF1);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout = quest_holdout(data::LabelFunction::kF1, 16);
  std::vector<std::int32_t> out(4);
  // Range beyond the dataset.
  EXPECT_THROW(compiled.predict_batch(holdout, 14, 18, out),
               std::out_of_range);
  // Inverted range.
  EXPECT_THROW(compiled.predict_batch(holdout, 8, 4, out), std::out_of_range);
  // Output span sized wrong for the range.
  EXPECT_THROW(compiled.predict_batch(holdout, 0, 3, out),
               std::invalid_argument);
  // An empty (default-constructed) model cannot score anything.
  const core::CompiledTree empty;
  EXPECT_THROW(empty.predict_batch(holdout, 0, 4, out), std::logic_error);
}

TEST(CompiledTree, RefusesToCompileEmptyTree) {
  data::Schema schema({data::Schema::continuous("x")}, 2);
  const core::DecisionTree tree(schema);
  EXPECT_THROW((void)core::CompiledTree::compile(tree), std::logic_error);
}

// ---------------------------------------------------------------------------
// Hot swap
// ---------------------------------------------------------------------------

TEST(ModelHandle, SwapPublishesNewModelAndCounts) {
  data::Schema schema({data::Schema::continuous("x")}, 2);
  core::ModelHandle handle(std::make_shared<const core::CompiledTree>(
      core::CompiledTree::compile(constant_tree(schema, 0))));
  EXPECT_EQ(handle.swaps(), 0u);
  const auto before = handle.get();
  handle.swap(std::make_shared<const core::CompiledTree>(
      core::CompiledTree::compile(constant_tree(schema, 1))));
  EXPECT_EQ(handle.swaps(), 1u);
  data::Dataset rows(schema);
  const double x = 0.0;
  rows.append(std::span<const double>(&x, 1), {}, 0);
  // The old snapshot keeps scoring with the old model; fresh readers see
  // the new one.
  EXPECT_EQ(before->predict(rows, 0), 0);
  EXPECT_EQ(handle.get()->predict(rows, 0), 1);
}

TEST(ModelHandle, SwapUnderConcurrentBatchesNeverTearsABatch) {
  // Scorers hammer the handle while the main thread flips between a
  // constant-0 and a constant-1 model. Each batch snapshots the model once,
  // so every batch must come back homogeneous — a mixed batch means a swap
  // tore through an in-flight evaluation.
  data::Schema schema({data::Schema::continuous("x")}, 2);
  auto model0 = std::make_shared<const core::CompiledTree>(
      core::CompiledTree::compile(constant_tree(schema, 0)));
  auto model1 = std::make_shared<const core::CompiledTree>(
      core::CompiledTree::compile(constant_tree(schema, 1)));
  core::ModelHandle handle(model0);

  data::Dataset rows(schema);
  for (int i = 0; i < 256; ++i) {
    const double x = static_cast<double>(i);
    rows.append(std::span<const double>(&x, 1), {}, 0);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<std::int64_t> batches{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 4; ++t) {
    scorers.emplace_back([&] {
      std::vector<std::int32_t> out(rows.num_records());
      while (!stop.load(std::memory_order_relaxed)) {
        const auto model = handle.get();
        model->predict_batch(rows, 0, rows.num_records(), out);
        for (const std::int32_t label : out) {
          if (label != out[0]) {
            torn.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int flip = 0; flip < 200; ++flip) {
    handle.swap(flip % 2 == 0 ? model1 : model0);
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& scorer : scorers) scorer.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(batches.load(), 0);
  EXPECT_EQ(handle.swaps(), 200u);
}

// ---------------------------------------------------------------------------
// predict.* telemetry
// ---------------------------------------------------------------------------

TEST(PredictMetrics, BatchesRecordsAndSwapsAreCounted) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF2);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout = quest_holdout(data::LabelFunction::kF2, 300);
  const mp::RunResult run = mp::run_ranks(1, kZero, [&](mp::Comm&) {
    std::vector<std::int32_t> out(100);
    for (std::size_t pos = 0; pos < 300; pos += 100) {
      compiled.predict_batch(holdout, pos, pos + 100, out);
    }
    core::ModelHandle handle(
        std::make_shared<const core::CompiledTree>(compiled));
    handle.swap(std::make_shared<const core::CompiledTree>(compiled));
  });
  EXPECT_EQ(run.metrics.value("predict.batches"), 3.0);
  EXPECT_EQ(run.metrics.value("predict.records"), 300.0);
  EXPECT_EQ(run.metrics.value("predict.swaps"), 1.0);
}

// ---------------------------------------------------------------------------
// Evaluation plumbing: compiled evaluate / distributed / holdout
// ---------------------------------------------------------------------------

TEST(Evaluate, CompiledMatchesRecursiveCellForCell) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF6);
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const data::Dataset holdout = quest_holdout(data::LabelFunction::kF6, 2000);
  const core::ConfusionMatrix recursive = core::evaluate(tree, holdout);
  const core::ConfusionMatrix batched = core::evaluate(compiled, holdout);
  ASSERT_EQ(recursive.total(), batched.total());
  for (std::int32_t a = 0; a < 2; ++a) {
    for (std::int32_t p = 0; p < 2; ++p) {
      EXPECT_EQ(recursive.at(a, p), batched.at(a, p));
    }
  }
}

TEST(Evaluate, DistributedMatchesSerialIncludingEmptyBlocks) {
  const core::DecisionTree tree = quest_tree(data::LabelFunction::kF2);
  const data::Dataset holdout = quest_holdout(data::LabelFunction::kF2, 900);
  const core::ConfusionMatrix serial = core::evaluate(tree, holdout);
  // 4 ranks over 900 rows; rank 3's block is intentionally empty.
  mp::run_ranks(4, kZero, [&](mp::Comm& comm) {
    const std::size_t lo = comm.rank() < 3
                               ? static_cast<std::size_t>(comm.rank()) * 300
                               : holdout.num_records();
    const std::size_t hi = comm.rank() < 3 ? lo + 300 : holdout.num_records();
    data::Dataset block(tree.schema());
    std::vector<double> cont(
        static_cast<std::size_t>(tree.schema().num_continuous()));
    std::vector<std::int32_t> cat(
        static_cast<std::size_t>(tree.schema().num_categorical()));
    for (std::size_t row = lo; row < hi; ++row) {
      int c = 0;
      int g = 0;
      for (int a = 0; a < tree.schema().num_attributes(); ++a) {
        if (tree.schema().attribute(a).kind ==
            data::AttributeKind::kContinuous) {
          cont[static_cast<std::size_t>(c++)] =
              holdout.continuous_value(a, row);
        } else {
          cat[static_cast<std::size_t>(g++)] =
              holdout.categorical_value(a, row);
        }
      }
      block.append(cont, cat, holdout.label(row));
    }
    const core::ConfusionMatrix global =
        core::evaluate_distributed(comm, tree, block);
    // Every rank holds the global tally.
    ASSERT_EQ(global.total(), serial.total());
    for (std::int32_t a = 0; a < 2; ++a) {
      for (std::int32_t p = 0; p < 2; ++p) {
        ASSERT_EQ(global.at(a, p), serial.at(a, p));
      }
    }
  });
}

TEST(Evaluate, HoldoutAccuracyMatchesPerRowOracle) {
  data::GeneratorConfig config;
  config.seed = 23;
  config.function = data::LabelFunction::kF2;
  const data::QuestGenerator generator(config);
  const core::DecisionTree tree =
      core::ScalParC::fit(generator.generate(0, 500), 2).tree;
  const double batched = core::holdout_accuracy(tree, generator, 700000, 1200);
  const data::Dataset holdout = generator.generate(700000, 1200);
  std::size_t correct = 0;
  for (std::size_t row = 0; row < holdout.num_records(); ++row) {
    correct += tree.predict(holdout, row) == holdout.label(row);
  }
  EXPECT_DOUBLE_EQ(batched, static_cast<double>(correct) / 1200.0);
}

// ---------------------------------------------------------------------------
// ConfusionMatrix: precision / recall / f1
// ---------------------------------------------------------------------------

TEST(ConfusionMatrix, PrecisionRecallF1) {
  core::ConfusionMatrix m(2);
  // actual 0: 8 right, 2 called 1; actual 1: 3 called 0, 7 right.
  for (int i = 0; i < 8; ++i) m.record(0, 0);
  for (int i = 0; i < 2; ++i) m.record(0, 1);
  for (int i = 0; i < 3; ++i) m.record(1, 0);
  for (int i = 0; i < 7; ++i) m.record(1, 1);
  EXPECT_DOUBLE_EQ(m.recall(0), 0.8);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.7);
  EXPECT_DOUBLE_EQ(m.precision(0), 8.0 / 11.0);
  EXPECT_DOUBLE_EQ(m.precision(1), 7.0 / 9.0);
  const double p0 = 8.0 / 11.0;
  EXPECT_DOUBLE_EQ(m.f1(0), 2.0 * p0 * 0.8 / (p0 + 0.8));
  const double p1 = 7.0 / 9.0;
  EXPECT_DOUBLE_EQ(m.f1(1), 2.0 * p1 * 0.7 / (p1 + 0.7));
}

TEST(ConfusionMatrix, PrecisionAndF1DegenerateCases) {
  core::ConfusionMatrix m(3);
  // Class 2 never occurs and is never predicted: all three scores are 0,
  // not NaN.
  m.record(0, 0);
  m.record(1, 0);
  EXPECT_DOUBLE_EQ(m.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(2), 0.0);
  // Class 1 occurs but is never predicted: precision 0, recall 0, f1 0.
  EXPECT_DOUBLE_EQ(m.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(1), 0.0);
  // Class 0 is over-predicted: perfect recall, diluted precision.
  EXPECT_DOUBLE_EQ(m.recall(0), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(0), 0.5);
}

}  // namespace
}  // namespace scalparc
