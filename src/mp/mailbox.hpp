// Point-to-point channels between ranks.
//
// Each (source, destination) pair has a dedicated FIFO channel. Sends are
// buffered (never block); receives block until a message with the requested
// tag is available. Because sends are buffered, higher-level exchange
// patterns (pairwise all-to-all, trees) cannot deadlock.
//
// If a rank dies with an exception, the runtime poisons every channel so
// that peers blocked in pop() wake up and unwind (RankAborted) instead of
// deadlocking the whole run.
//
// Receives additionally support a deadline (try_pop_until) so the runtime
// can bound every blocking wait: on expiry the Comm layer consults the Hub's
// deadlock detector and either keeps waiting, aborts the run with a per-rank
// diagnostic (DeadlockDetected), or gives up (RecvTimeout).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>

#include "mp/message.hpp"

namespace scalparc::mp {

// Thrown out of Channel::pop when the run has been aborted by another rank.
struct RankAborted : std::runtime_error {
  RankAborted() : std::runtime_error("message-passing run aborted by a peer rank") {}
};

// A received frame whose CRC32 checksum does not match its payload.
struct CorruptMessage : std::runtime_error {
  explicit CorruptMessage(const std::string& what) : std::runtime_error(what) {}
};

// A blocking receive exceeded the configured per-receive timeout.
struct RecvTimeout : std::runtime_error {
  explicit RecvTimeout(const std::string& what) : std::runtime_error(what) {}
};

// Every unfinished rank is blocked in a receive with no deliverable message:
// the run can never make progress. Carries a per-rank diagnostic.
struct DeadlockDetected : std::runtime_error {
  explicit DeadlockDetected(const std::string& what) : std::runtime_error(what) {}
};

class Channel {
 public:
  enum class PopStatus { kOk, kTimeout };

  void push(Message message);

  // Blocks until a message whose tag equals `tag` is present, removes it and
  // returns it. Messages with other tags are left queued (a fast sender may
  // have already pushed messages for a later operation). Throws RankAborted
  // if the channel is poisoned while waiting.
  Message pop(std::int64_t tag);

  // Like pop, but gives up at `deadline` and returns kTimeout instead of
  // blocking forever. Still throws RankAborted on poisoning.
  PopStatus try_pop_until(std::int64_t tag, Message& out,
                          std::chrono::steady_clock::time_point deadline);

  // Non-blocking: removes and returns a matching message if one is already
  // queued. Throws RankAborted if poisoned.
  bool try_pop(std::int64_t tag, Message& out);

  // True if a message with this tag is queued (deadlock-detector probe).
  bool has_message(std::int64_t tag) const;

  // Wakes all waiters with RankAborted; subsequent pops also throw.
  void poison();

  // True if any message is queued (used by shutdown sanity checks).
  bool empty() const;

  // Removes and counts all queued messages (post-abort hygiene).
  std::size_t drain();

 private:
  // Caller must hold mutex_. Returns true and fills `out` on a tag match.
  bool take_locked(std::int64_t tag, Message& out);

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace scalparc::mp
