#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>

namespace scalparc::util {

const Json& Json::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::out_of_range("Json: missing key '" + key + "'");
  }
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  const Object* obj = std::get_if<Object>(&value_);
  if (!obj) return nullptr;
  const auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

std::size_t Json::size() const {
  if (const Array* a = std::get_if<Array>(&value_)) return a->size();
  if (const Object* o = std::get_if<Object>(&value_)) return o->size();
  throw std::invalid_argument("Json: size() on a scalar");
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  // JSON has no NaN/Infinity literal. Throwing here would let one skewed
  // measurement (e.g. a 0/0 rate in a metrics export) destroy the whole
  // document, so non-finite degrades to null — the reader sees "absent".
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Integers in the exact range print without a decimal point.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_double());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      append_newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, key);
      out += indent > 0 ? ": " : ":";
      value.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("Json::parse: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char ch) {
    if (!consume(ch)) fail(std::string("expected '") + ch + "'");
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
    }
    pos_ += word.size();
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace scalparc::util
