// Isoefficiency analysis (the scalability framework of Kumar et al.'s
// "Introduction to Parallel Computing", which §3 uses to define runtime
// scalability: overhead To = p*Tp - Ts must stay O(Ts)).
//
// This bench maps efficiency E(N, p) = T1(N) / (p * Tp(N, p)) over a grid
// and reports, for each processor count, the smallest training size that
// sustains a target efficiency — the isoefficiency curve. For a scalable
// formulation the required N grows polynomially (here ~linearly) in p; an
// unscalable one (replicated-hash SPRINT) needs superlinear growth or can
// never reach the target.
//
//   ./isoefficiency [--target 0.5] [--procs 2,4,...] [--csv DIR] [--sprint]
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "sprint/parallel_sprint.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const double target = args.get_double("target", 0.5);
  const auto procs = args.get_int_list("procs", {2, 4, 8, 16, 32, 64});
  const bool use_sprint = args.get_bool("sprint", false);
  const auto generator = bench::paper_generator();
  const auto controls = bench::paper_controls();
  const auto model = mp::CostModel::cray_t3d();

  const std::vector<std::uint64_t> sizes = {4000,  8000,   16000, 32000,
                                            64000, 128000, 256000};

  bench::CsvWriter csv(args, use_sprint ? "isoefficiency_sprint.csv"
                                        : "isoefficiency.csv",
                       "records,procs,efficiency");

  const auto fit_time = [&](std::uint64_t n, int p) {
    if (use_sprint && p > 1) {
      return sprint::fit_parallel_sprint_generated(generator, n, p, controls, model)
          .run.modeled_seconds;
    }
    return core::ScalParC::fit_generated(generator, n, p, controls, model)
        .run.modeled_seconds;
  };

  std::printf("Isoefficiency map (%s), target E >= %.2f\n\n",
              use_sprint ? "parallel SPRINT baseline" : "ScalParC", target);
  std::printf("%10s", "records\\p");
  for (const std::int64_t p : procs) std::printf(" %7lld", static_cast<long long>(p));
  std::printf("\n");

  std::map<std::uint64_t, double> serial;
  std::map<std::int64_t, std::uint64_t> iso_n;
  for (const std::uint64_t n : sizes) {
    serial[n] = fit_time(n, 1);
    std::printf("%10s", bench::size_label(n).c_str());
    for (const std::int64_t p : procs) {
      const double tp = fit_time(n, static_cast<int>(p));
      const double efficiency = serial[n] / (static_cast<double>(p) * tp);
      std::printf(" %7.2f", efficiency);
      csv.row("%llu,%lld,%.4f", static_cast<unsigned long long>(n),
              static_cast<long long>(p), efficiency);
      if (efficiency >= target && iso_n.find(p) == iso_n.end()) {
        iso_n[p] = n;
      }
    }
    std::printf("\n");
  }

  std::printf("\nisoefficiency curve (smallest N with E >= %.2f):\n", target);
  std::printf("%6s %12s %18s\n", "procs", "records", "records/proc");
  for (const std::int64_t p : procs) {
    const auto it = iso_n.find(p);
    if (it == iso_n.end()) {
      std::printf("%6lld %12s %18s\n", static_cast<long long>(p), ">max", "-");
    } else {
      std::printf("%6lld %12llu %18.0f\n", static_cast<long long>(p),
                  static_cast<unsigned long long>(it->second),
                  static_cast<double>(it->second) / static_cast<double>(p));
    }
  }
  std::printf(
      "\nA scalable formulation keeps records/proc roughly flat (isoefficiency\n"
      "~linear in p). Run with --sprint to see the replicated-hash baseline\n"
      "fail to hold the target as p grows.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
