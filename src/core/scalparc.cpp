#include "core/scalparc.hpp"

#include <stdexcept>
#include <vector>

#include "sort/partition_util.hpp"

namespace scalparc::core {

InductionResult ScalParC::fit_rank(mp::Comm& comm,
                                   const data::Dataset& local_block,
                                   std::int64_t first_rid,
                                   std::uint64_t total_records,
                                   const InductionControls& controls) {
  return induce_tree_distributed(comm, local_block, first_rid, total_records,
                                 controls);
}

FitReport ScalParC::fit(const data::Dataset& training, int nranks,
                        const InductionControls& controls,
                        const mp::CostModel& model) {
  if (nranks <= 0) throw std::invalid_argument("ScalParC::fit: nranks must be positive");
  const std::uint64_t total = training.num_records();
  const std::vector<std::size_t> sizes = sort::equal_partition_sizes(total, nranks);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);

  std::vector<InductionResult> results(static_cast<std::size_t>(nranks));
  mp::RunResult run = mp::run_ranks(nranks, model, [&](mp::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset block = training.slice(offsets[r], offsets[r + 1]);
    results[r] = fit_rank(comm, block, static_cast<std::int64_t>(offsets[r]),
                          total, controls);
  });

  FitReport report;
  report.tree = std::move(results[0].tree);
  report.stats = std::move(results[0].stats);
  report.run = std::move(run);
  return report;
}

FitReport ScalParC::fit_generated(const data::QuestGenerator& generator,
                                  std::uint64_t total_records, int nranks,
                                  const InductionControls& controls,
                                  const mp::CostModel& model) {
  if (nranks <= 0) {
    throw std::invalid_argument("ScalParC::fit_generated: nranks must be positive");
  }
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(total_records, nranks);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);

  std::vector<InductionResult> results(static_cast<std::size_t>(nranks));
  mp::RunResult run = mp::run_ranks(nranks, model, [&](mp::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset block = generator.generate(offsets[r], sizes[r]);
    results[r] = fit_rank(comm, block, static_cast<std::int64_t>(offsets[r]),
                          total_records, controls);
  });

  FitReport report;
  report.tree = std::move(results[0].tree);
  report.stats = std::move(results[0].stats);
  report.run = std::move(run);
  return report;
}

}  // namespace scalparc::core
