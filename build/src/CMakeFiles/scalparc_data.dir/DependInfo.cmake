
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/attribute_list.cpp" "src/CMakeFiles/scalparc_data.dir/data/attribute_list.cpp.o" "gcc" "src/CMakeFiles/scalparc_data.dir/data/attribute_list.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/scalparc_data.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/scalparc_data.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/scalparc_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/scalparc_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/gaussian.cpp" "src/CMakeFiles/scalparc_data.dir/data/gaussian.cpp.o" "gcc" "src/CMakeFiles/scalparc_data.dir/data/gaussian.cpp.o.d"
  "/root/repo/src/data/schema.cpp" "src/CMakeFiles/scalparc_data.dir/data/schema.cpp.o" "gcc" "src/CMakeFiles/scalparc_data.dir/data/schema.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/scalparc_data.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/scalparc_data.dir/data/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scalparc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
