#include "mp/mailbox.hpp"

#include <algorithm>
#include <utility>

namespace scalparc::mp {

void Channel::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  ready_.notify_all();
}

Message Channel::pop(std::int64_t tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = std::find_if(queue_.begin(), queue_.end(), [tag](const Message& m) {
      return m.tag == tag;
    });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    if (poisoned_) throw RankAborted{};
    ready_.wait(lock);
  }
}

void Channel::poison() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
  }
  ready_.notify_all();
}

bool Channel::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty();
}

}  // namespace scalparc::mp
