file(REMOVE_RECURSE
  "CMakeFiles/sprint_compare.dir/sprint_compare.cpp.o"
  "CMakeFiles/sprint_compare.dir/sprint_compare.cpp.o.d"
  "sprint_compare"
  "sprint_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprint_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
