#include "core/node_table.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mp/metrics.hpp"

namespace scalparc::core {

void NodeTable::update(std::span<const std::int64_t> rids,
                       std::span<const std::int32_t> children,
                       std::int64_t block_limit) {
  if (rids.size() != children.size()) {
    throw std::invalid_argument("NodeTable::update: rid/child size mismatch");
  }
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    sink->add("nodetable.updates", 1);
    sink->add("nodetable.update_entries", static_cast<double>(rids.size()));
  }
  std::vector<DistributedHashTable<NodeTableEntry>::Update> updates(rids.size());
  for (std::size_t i = 0; i < rids.size(); ++i) {
    updates[i].key = rids[i];
    updates[i].value = NodeTableEntry{children[i], epoch_};
  }
  table_.update(updates, block_limit);
}

std::vector<std::int32_t> NodeTable::enquire(
    std::span<const std::int64_t> rids) {
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    sink->add("nodetable.enquiries", 1);
    sink->add("nodetable.enquiry_entries", static_cast<double>(rids.size()));
  }
  std::vector<NodeTableEntry> entries = table_.enquire(rids);
  std::vector<std::int32_t> children(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].epoch != epoch_) {
      throw std::logic_error(
          "NodeTable::enquire: record was not assigned a child this level "
          "(stale entry)");
    }
    children[i] = entries[i].child;
  }
  return children;
}

}  // namespace scalparc::core
