// MDL-based tree pruning (extension).
//
// The paper concentrates on the induction step and leaves pruning out of
// scope (§2); we provide the SLIQ-style MDL pruning pass as a documented
// extension so the library covers the full classifier lifecycle. A subtree
// is collapsed into a leaf when the description length of "leaf + its
// errors" does not exceed the description length of "split + children":
//
//   cost(leaf)  = 1 + errors(t)
//   cost(split) = 1 + L_split + sum_children cost(child)
//   L_split     = log2(num_attributes)
//               + log2(num_records(t))         for a continuous threshold
//               + cardinality                  for a categorical mapping
//
// Costs are in bits; errors are counted on the training distribution stored
// in the nodes' class histograms.
#pragma once

#include "core/tree.hpp"

namespace scalparc::core {

struct PruneReport {
  int nodes_before = 0;
  int nodes_after = 0;
  int subtrees_collapsed = 0;
};

// Prunes in place (bottom-up) and compacts node ids. Idempotent.
PruneReport mdl_prune(DecisionTree& tree);

}  // namespace scalparc::core
