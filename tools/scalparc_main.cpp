// Entry point of the `scalparc` command-line tool; all logic lives in the
// testable library src/tools/cli_app.cpp.
#include <iostream>

#include "tools/cli_app.hpp"

int main(int argc, char** argv) {
  return scalparc::tools::run_cli(argc, argv, std::cout, std::cerr);
}
