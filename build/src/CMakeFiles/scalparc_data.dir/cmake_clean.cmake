file(REMOVE_RECURSE
  "CMakeFiles/scalparc_data.dir/data/attribute_list.cpp.o"
  "CMakeFiles/scalparc_data.dir/data/attribute_list.cpp.o.d"
  "CMakeFiles/scalparc_data.dir/data/csv.cpp.o"
  "CMakeFiles/scalparc_data.dir/data/csv.cpp.o.d"
  "CMakeFiles/scalparc_data.dir/data/dataset.cpp.o"
  "CMakeFiles/scalparc_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/scalparc_data.dir/data/gaussian.cpp.o"
  "CMakeFiles/scalparc_data.dir/data/gaussian.cpp.o.d"
  "CMakeFiles/scalparc_data.dir/data/schema.cpp.o"
  "CMakeFiles/scalparc_data.dir/data/schema.cpp.o.d"
  "CMakeFiles/scalparc_data.dir/data/synthetic.cpp.o"
  "CMakeFiles/scalparc_data.dir/data/synthetic.cpp.o.d"
  "libscalparc_data.a"
  "libscalparc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
