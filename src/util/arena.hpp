// Per-level arena allocator for the induction hot loop.
//
// Every tree level needs the same family of scratch buffers — count
// matrices, boundary elements, kid-count matrices, regroup cursors — whose
// sizes shrink monotonically with the active record count. An Arena turns
// all of them into bump allocations from one block: reset() at a level
// boundary recycles the whole block in O(1) without returning memory to the
// heap, so steady-state levels perform zero heap allocation.
//
// Lifetime rules (see docs/architecture.md, "memory layout & scan kernels"):
//  * A span returned by alloc()/alloc_zeroed() is valid until the next
//    reset(); never store one across a level boundary.
//  * alloc() never moves previously returned spans: when the current block
//    is exhausted a fresh block is chained, and reset() coalesces all blocks
//    into one large block so the next level allocates from contiguous
//    memory again. Growth therefore only happens while the arena is still
//    warming up to the run's high-water mark.
//  * The arena is single-threaded by design — one per rank, like all
//    per-rank induction state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace scalparc::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes > 0) {
      blocks_.push_back(Block::make(initial_bytes));
    }
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage for `count` objects of T. T must be trivially
  // copyable and trivially destructible (the arena never runs destructors).
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena only holds trivial types");
    if (count == 0) return {};
    void* raw = bump(count * sizeof(T), alignof(T));
    return {static_cast<T*>(raw), count};
  }

  template <typename T>
  std::span<T> alloc_zeroed(std::size_t count) {
    std::span<T> out = alloc<T>(count);
    std::memset(out.data(), 0, out.size_bytes());
    return out;
  }

  // Recycles everything allocated since the previous reset. If allocation
  // overflowed into chained blocks, they are coalesced into one block of
  // their combined size so steady state settles on a single contiguous
  // region.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.capacity;
      blocks_.clear();
      blocks_.push_back(Block::make(total));
    } else if (!blocks_.empty()) {
      blocks_.back().cursor = 0;
    }
    used_ = 0;
  }

  // Bytes handed out since the last reset (high-water diagnostics).
  std::size_t used() const { return used_; }
  // Total bytes owned by the arena's blocks.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }
  std::size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t cursor = 0;

    static Block make(std::size_t bytes) {
      Block b;
      b.capacity = bytes;
      b.data.reset(new std::byte[bytes]);
      return b;
    }
  };

  void* bump(std::size_t bytes, std::size_t align) {
    if (blocks_.empty()) {
      blocks_.push_back(Block::make(std::max<std::size_t>(bytes, kMinBlock)));
    }
    Block* block = &blocks_.back();
    std::size_t cursor = aligned(block->cursor, align);
    if (cursor + bytes > block->capacity) {
      // Chain a fresh block at least double the current total so the number
      // of warm-up growths is logarithmic; existing spans stay valid.
      const std::size_t grown = std::max(bytes + align, 2 * capacity());
      blocks_.push_back(Block::make(std::max(grown, kMinBlock)));
      block = &blocks_.back();
      cursor = aligned(block->cursor, align);
    }
    void* out = block->data.get() + cursor;
    block->cursor = cursor + bytes;
    used_ += bytes;
    return out;
  }

  static std::size_t aligned(std::size_t cursor, std::size_t align) {
    return (cursor + align - 1) & ~(align - 1);
  }

  static constexpr std::size_t kMinBlock = 4096;
  std::vector<Block> blocks_;
  std::size_t used_ = 0;
};

}  // namespace scalparc::util
