file(REMOVE_RECURSE
  "CMakeFiles/scalparc_sprint.dir/sprint/parallel_sprint.cpp.o"
  "CMakeFiles/scalparc_sprint.dir/sprint/parallel_sprint.cpp.o.d"
  "CMakeFiles/scalparc_sprint.dir/sprint/serial_cart.cpp.o"
  "CMakeFiles/scalparc_sprint.dir/sprint/serial_cart.cpp.o.d"
  "CMakeFiles/scalparc_sprint.dir/sprint/serial_sprint.cpp.o"
  "CMakeFiles/scalparc_sprint.dir/sprint/serial_sprint.cpp.o.d"
  "libscalparc_sprint.a"
  "libscalparc_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
