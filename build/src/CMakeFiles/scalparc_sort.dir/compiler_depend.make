# Empty compiler generated dependencies file for scalparc_sort.
# This may be replaced when dependencies are built.
