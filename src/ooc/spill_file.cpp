#include "ooc/spill_file.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "util/crc32.hpp"

namespace scalparc::ooc {

namespace {

std::string make_temp_path() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / ("scalparc_spill_" + std::to_string(::getpid()) + "_" +
                 std::to_string(id) + ".bin"))
      .string();
}

}  // namespace

TempFile::TempFile(IoStats* stats) : path_(make_temp_path()) {
  // Create the (empty) file eagerly so size/read work before any write.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("TempFile: cannot create " + path_);
  }
  std::fclose(f);
  if (stats != nullptr) ++stats->files_created;
}

TempFile::TempFile(TempFile&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempFile& TempFile::operator=(TempFile&& other) noexcept {
  if (this != &other) {
    remove_file();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempFile::~TempFile() { remove_file(); }

void TempFile::remove_file() noexcept {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    path_.clear();
  }
}

std::uint64_t TempFile::size_bytes() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

namespace detail {

void write_bytes(const std::string& path, bool append, const void* data,
                 std::size_t bytes, IoStats* stats) {
  std::FILE* file = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file == nullptr) {
    throw std::runtime_error("spill_file: cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(data, 1, bytes, file);
  std::fclose(file);
  if (written != bytes) {
    throw std::runtime_error("spill_file: short write to " + path);
  }
  if (stats != nullptr) stats->bytes_written += bytes;
}

std::size_t read_bytes(std::FILE* file, void* data, std::size_t bytes,
                       IoStats* stats) {
  const std::size_t got = std::fread(data, 1, bytes, file);
  if (stats != nullptr) stats->bytes_read += got;
  return got;
}

void create_or_truncate(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("spill_file: cannot create " + path);
  }
  std::fclose(f);
}

std::uint32_t crc32_update(const void* data, std::size_t bytes,
                           std::uint32_t seed) {
  return util::crc32(data, bytes, seed);
}

}  // namespace detail

}  // namespace scalparc::ooc
