#include "core/tree.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace scalparc::core {

bool SplitDecision::operator==(const SplitDecision& other) const {
  if (attribute != other.attribute || kind != other.kind ||
      num_children != other.num_children) {
    return false;
  }
  if (kind == data::AttributeKind::kContinuous) {
    return threshold == other.threshold;
  }
  return value_to_child == other.value_to_child;
}

int DecisionTree::add_node(TreeNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int DecisionTree::num_leaves() const {
  int leaves = 0;
  for (const TreeNode& n : nodes_) leaves += n.is_leaf;
  return leaves;
}

int DecisionTree::depth() const {
  int depth = 0;
  for (const TreeNode& n : nodes_) depth = std::max(depth, n.depth);
  return depth;
}

std::int32_t DecisionTree::predict_from(int node_id, const data::Dataset& dataset,
                                        std::size_t row) const {
  const TreeNode* n = &node(node_id);
  while (!n->is_leaf) {
    int slot = -1;
    if (n->split.kind == data::AttributeKind::kContinuous) {
      const double v = dataset.continuous_value(n->split.attribute, row);
      slot = v < n->split.threshold ? 0 : 1;
    } else {
      const std::int32_t code = dataset.categorical_value(n->split.attribute, row);
      if (code >= 0 &&
          code < static_cast<std::int32_t>(n->split.value_to_child.size())) {
        slot = n->split.value_to_child[static_cast<std::size_t>(code)];
      }
    }
    if (slot < 0) return n->majority_class;  // value unseen during training
    n = &node(n->children.at(static_cast<std::size_t>(slot)));
  }
  return n->majority_class;
}

std::int32_t DecisionTree::predict(const data::Dataset& dataset,
                                   std::size_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: empty tree");
  }
  return predict_from(root(), dataset, row);
}

double DecisionTree::accuracy(const data::Dataset& dataset) const {
  if (dataset.num_records() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t row = 0; row < dataset.num_records(); ++row) {
    correct += predict(dataset, row) == dataset.label(row);
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_records());
}

bool DecisionTree::same_structure(const DecisionTree& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& a = nodes_[i];
    const TreeNode& b = other.nodes_[i];
    if (a.is_leaf != b.is_leaf || a.num_records != b.num_records ||
        a.depth != b.depth || a.children != b.children ||
        a.class_counts != b.class_counts) {
      return false;
    }
    if (a.is_leaf) {
      if (a.majority_class != b.majority_class) return false;
    } else if (!(a.split == b.split)) {
      return false;
    }
  }
  return true;
}

void DecisionTree::print_node(std::ostream& out, int node_id, int indent) const {
  const TreeNode& n = node(node_id);
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (n.is_leaf) {
    out << pad << "leaf: class " << n.majority_class << " (" << n.num_records
        << " records)\n";
    return;
  }
  const data::AttributeInfo& info = schema_.attribute(n.split.attribute);
  if (n.split.kind == data::AttributeKind::kContinuous) {
    out << pad << info.name << " < " << n.split.threshold << "?\n";
    out << pad << "yes:\n";
    print_node(out, n.children.at(0), indent + 1);
    out << pad << "no:\n";
    print_node(out, n.children.at(1), indent + 1);
    return;
  }
  out << pad << info.name << " in {...}? (" << n.split.num_children
      << "-way)\n";
  for (int slot = 0; slot < n.split.num_children; ++slot) {
    out << pad << "values[";
    bool first = true;
    for (std::size_t code = 0; code < n.split.value_to_child.size(); ++code) {
      if (n.split.value_to_child[code] == slot) {
        if (!first) out << ',';
        out << code;
        first = false;
      }
    }
    out << "]:\n";
    print_node(out, n.children.at(static_cast<std::size_t>(slot)), indent + 1);
  }
}

void DecisionTree::print(std::ostream& out) const {
  if (nodes_.empty()) {
    out << "(empty tree)\n";
    return;
  }
  print_node(out, root(), 0);
}

std::string DecisionTree::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::size_t DecisionTree::payload_bytes() const {
  std::size_t bytes = nodes_.size() * sizeof(TreeNode);
  for (const TreeNode& n : nodes_) {
    bytes += n.class_counts.size() * sizeof(std::int64_t);
    bytes += n.children.size() * sizeof(int);
    bytes += n.split.value_to_child.size() * sizeof(std::int32_t);
  }
  return bytes;
}

}  // namespace scalparc::core
