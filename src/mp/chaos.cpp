#include "mp/chaos.hpp"

#include <sstream>
#include <string>

namespace scalparc::mp {

namespace {

// splitmix64, same mixer the fault plans use for corruption positions.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Tiny deterministic stream over the seed; every draw advances the state.
class Draw {
 public:
  explicit Draw(std::uint64_t seed) : state_(mix64(seed ^ 0xC0FFEE)) {}
  // Uniform in [0, n); n must be positive.
  int below(int n) {
    state_ = mix64(state_);
    return static_cast<int>(state_ % static_cast<std::uint64_t>(n));
  }
  int between(int lo, int hi) { return lo + below(hi - lo + 1); }

 private:
  std::uint64_t state_;
};

FaultAction kill_at_level(int rank, int level) {
  FaultAction a;
  a.kind = FaultKind::kKill;
  a.rank = rank;
  a.level = level;
  return a;
}

}  // namespace

const char* to_string(ChaosArchetype archetype) {
  switch (archetype) {
    case ChaosArchetype::kKillDuringRecovery:
      return "kill-during-recovery";
    case ChaosArchetype::kJoinKillInterleave:
      return "join-kill-interleave";
    case ChaosArchetype::kCorruptDelayStorm:
      return "corrupt-delay-storm";
    case ChaosArchetype::kCheckpointWriteFault:
      return "checkpoint-write-fault";
    case ChaosArchetype::kStragglerCompound:
      return "straggler-compound";
  }
  return "unknown";
}

GeneratedChaos generate_chaos(std::uint64_t seed, const ChaosSpec& spec) {
  const int world = spec.world > 0 ? spec.world : 1;
  const int levels = spec.levels > 1 ? spec.levels : 2;
  Draw draw(seed);

  GeneratedChaos out;
  out.archetype = static_cast<ChaosArchetype>(draw.below(5));
  out.schedule.set_seed(seed == 0 ? 1 : seed);
  std::ostringstream desc;
  desc << "seed=" << seed << " " << to_string(out.archetype) << ":";

  switch (out.archetype) {
    case ChaosArchetype::kKillDuringRecovery: {
      // First kill mid-tree, second kill on another rank at a *later* level
      // while the first recovery is replaying from the checkpoint.
      const int first_level = draw.between(1, levels - 1);
      const int second_level =
          first_level < levels ? draw.between(first_level, levels) : levels;
      const int first_victim = draw.below(world);
      const int second_victim = (first_victim + 1 + draw.below(world)) % world;
      out.schedule.add_plan().add(kill_at_level(first_victim, first_level));
      out.schedule.add_plan().add(kill_at_level(second_victim, second_level));
      desc << " kill r" << first_victim << "@L" << first_level << " then r"
           << second_victim << "@L" << second_level << " during recovery";
      break;
    }
    case ChaosArchetype::kJoinKillInterleave: {
      // Kill, then kill again at the very level the recovery resumes from —
      // under a grow policy that is immediately after the joiner admit.
      const int level = draw.between(1, levels - 1);
      const int victim = draw.below(world);
      const int next_victim = (victim + 1) % world;
      out.schedule.add_plan().add(kill_at_level(victim, level));
      out.schedule.add_plan().add(kill_at_level(next_victim, level));
      desc << " kill r" << victim << "@L" << level << " then r" << next_victim
           << "@L" << level << " right after the resume admit";
      break;
    }
    case ChaosArchetype::kCorruptDelayStorm: {
      // A burst of wire faults the transport heals in-band, then a kill so
      // the recovery machinery still gets exercised.
      FaultPlan& storm = out.schedule.add_plan();
      const int bursts = draw.between(2, 4);
      for (int i = 0; i < bursts; ++i) {
        FaultAction a;
        a.rank = draw.below(world);
        a.op = draw.between(3, 40) + i * 7;
        switch (draw.below(4)) {
          case 0: a.kind = FaultKind::kCorrupt; break;
          case 1: a.kind = FaultKind::kDrop; break;
          case 2: a.kind = FaultKind::kDuplicate; break;
          default:
            a.kind = FaultKind::kDelay;
            a.delay_ms = static_cast<double>(draw.between(1, 10));
            break;
        }
        storm.add(a);
      }
      storm.add(kill_at_level(draw.below(world), draw.between(1, levels - 1)));
      desc << " " << bursts << " wire faults + kill";
      break;
    }
    case ChaosArchetype::kCheckpointWriteFault: {
      // Transient checkpoint write failures; a count within the retry
      // budget heals silently, beyond it the run must classify as
      // unrecoverable (never as corruption).
      out.checkpoint_write_faults = draw.between(1, 6);
      desc << " " << out.checkpoint_write_faults
           << " transient checkpoint write fault(s)";
      break;
    }
    case ChaosArchetype::kStragglerCompound: {
      // Gray failure first: one rank runs the whole attempt slowed so the
      // phi-accrual health layer classifies it (needs health monitoring on
      // in the driver). The retry — re-tiled away from the straggler under
      // kRebalance — is then hit by a hard kill mid-replay, and the third
      // attempt is clean so the run can complete.
      const int slow_rank = draw.below(world);
      const int factor = draw.between(4, 8);
      FaultAction slow;
      slow.kind = FaultKind::kSlow;
      slow.rank = slow_rank;
      slow.factor = static_cast<double>(factor);
      out.schedule.add_plan().add(slow);
      const int victim = (slow_rank + 1 + draw.below(world)) % world;
      const int kill_level = draw.between(1, levels - 1);
      out.schedule.add_plan().add(kill_at_level(victim, kill_level));
      desc << " slow r" << slow_rank << " x" << factor << " then kill r"
           << victim << "@L" << kill_level << " during the rebalance replay";
      break;
    }
  }
  out.description = desc.str();
  return out;
}

}  // namespace scalparc::mp
