file(REMOVE_RECURSE
  "CMakeFiles/level_vs_node.dir/level_vs_node.cpp.o"
  "CMakeFiles/level_vs_node.dir/level_vs_node.cpp.o.d"
  "level_vs_node"
  "level_vs_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_vs_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
