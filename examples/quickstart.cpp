// Quickstart: generate a small synthetic training set, fit a decision tree
// with ScalParC on a simulated 4-processor cluster, print the tree and its
// accuracy, and show the per-rank communication statistics.
//
//   ./examples/quickstart [--records N] [--ranks P] [--function F2] [--seed S]
#include <cstdio>

#include "core/predict.hpp"
#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 2000));
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::parse_label_function(args.get_string("function", "F2"));

  // 1. Training data: the Quest generator (7 attributes, 2 classes), the
  //    same family of synthetic workloads the paper evaluates on.
  const data::QuestGenerator generator(config);

  // 2. Fit on a simulated cluster. Each rank generates its own block of
  //    records; the modeled runtime uses the Cray T3D calibration.
  const core::FitReport report = core::ScalParC::fit_generated(
      generator, records, ranks, core::InductionControls{},
      mp::CostModel::cray_t3d());

  std::printf("ScalParC quickstart\n");
  std::printf("  records          : %llu\n",
              static_cast<unsigned long long>(records));
  std::printf("  simulated ranks  : %d\n", ranks);
  std::printf("  tree nodes       : %d (%d leaves, depth %d)\n",
              report.tree.num_nodes(), report.tree.num_leaves(),
              report.tree.depth());
  std::printf("  modeled runtime  : %.4f s (presort %.4f s)\n",
              report.stats.total_seconds, report.stats.presort_seconds);

  // 3. Evaluate on held-out data drawn from a disjoint record-id range.
  const double train_acc = core::holdout_accuracy(report.tree, generator, 0, records);
  const double test_acc =
      core::holdout_accuracy(report.tree, generator, records + 1000000, 10000);
  std::printf("  training accuracy: %.4f\n", train_acc);
  std::printf("  held-out accuracy: %.4f\n", test_acc);

  // 4. Per-rank communication: the quantity ScalParC keeps at O(N/p).
  std::printf("\n  rank   bytes sent   messages   work units\n");
  for (std::size_t r = 0; r < report.run.ranks.size(); ++r) {
    const mp::CommStats& stats = report.run.ranks[r].stats;
    std::printf("  %4zu %12llu %10llu %12.0f\n", r,
                static_cast<unsigned long long>(stats.bytes_sent),
                static_cast<unsigned long long>(stats.messages_sent),
                stats.work_units);
  }

  // 5. The model itself.
  if (report.tree.num_nodes() <= 64) {
    std::printf("\n%s", report.tree.to_string().c_str());
  } else {
    std::printf("\n  (tree has %d nodes; rerun with fewer records to print it)\n",
                report.tree.num_nodes());
  }
  return 0;
}
