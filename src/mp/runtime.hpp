// Thread-backed SPMD runtime: spawns one thread per rank, runs the supplied
// body on each, and collects per-rank statistics, memory peaks and modeled
// time. This substitutes for "MPI on the Cray T3D" (see DESIGN.md §2):
// ranks share nothing except messages, so communication volume and pattern
// match a true distributed-memory run.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mp/comm.hpp"
#include "mp/costmodel.hpp"
#include "mp/mailbox.hpp"
#include "mp/stats.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::mp {

// Shared state between the ranks of one run: the p x p channel matrix.
class Hub {
 public:
  explicit Hub(int nranks);

  int size() const { return nranks_; }

  // Channel carrying messages from `src` to `dst`.
  Channel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(nranks_) +
                     static_cast<std::size_t>(dst)];
  }

  // True when every channel has been drained (sanity check after a run).
  bool all_channels_empty() const;

  // Aborts the run: wakes every blocked receiver with RankAborted.
  void poison_all();

 private:
  int nranks_;
  std::vector<Channel> channels_;
};

struct RankOutcome {
  CommStats stats;
  util::MemoryMeter meter;
  double vtime_seconds = 0.0;
};

struct RunResult {
  // Modeled parallel runtime: max over ranks of the final virtual clock.
  double modeled_seconds = 0.0;
  // Actual wall-clock time of the threaded run (noisy when oversubscribed).
  double wall_seconds = 0.0;
  std::vector<RankOutcome> ranks;

  CommStats total_stats() const;
  std::size_t max_peak_bytes_per_rank() const;
  std::uint64_t max_bytes_sent_per_rank() const;
};

// Runs `body(comm)` on `nranks` ranks and returns the aggregated result.
// Any exception thrown by a rank is rethrown on the calling thread after all
// ranks have been joined.
RunResult run_ranks(int nranks, const CostModel& model,
                    const std::function<void(Comm&)>& body);

}  // namespace scalparc::mp
