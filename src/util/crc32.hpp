// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used as the frame checksum of the message-passing runtime (corrupted
// payloads must be *detected*, not mis-parsed) and as the integrity check of
// checkpoint sections. Incremental: feed chunks via the seed parameter.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace scalparc::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

// Accumulating form: pass the previous return value as `seed` to continue a
// running checksum over multiple chunks (seed 0 starts a fresh one).
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(std::span<const std::byte> data,
                           std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace scalparc::util
