#include "data/schema.hpp"

#include <cstddef>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::data {

Schema::Schema(std::vector<AttributeInfo> attributes, std::int32_t num_classes)
    : attributes_(std::move(attributes)), num_classes_(num_classes) {
  validate();
}

AttributeInfo Schema::continuous(std::string name) {
  return AttributeInfo{std::move(name), AttributeKind::kContinuous, 0};
}

AttributeInfo Schema::categorical(std::string name, std::int32_t cardinality) {
  return AttributeInfo{std::move(name), AttributeKind::kCategorical, cardinality};
}

const AttributeInfo& Schema::attribute(int index) const {
  return attributes_.at(static_cast<std::size_t>(index));
}

int Schema::num_continuous() const {
  int n = 0;
  for (const auto& a : attributes_) n += a.kind == AttributeKind::kContinuous;
  return n;
}

int Schema::num_categorical() const {
  return num_attributes() - num_continuous();
}

int Schema::find(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

void Schema::validate() const {
  if (attributes_.empty()) {
    throw std::invalid_argument("Schema: at least one attribute is required");
  }
  if (num_classes_ < 2) {
    throw std::invalid_argument("Schema: at least two classes are required");
  }
  std::set<std::string> names;
  for (const auto& a : attributes_) {
    if (a.name.empty()) {
      throw std::invalid_argument("Schema: attribute names must be non-empty");
    }
    if (!names.insert(a.name).second) {
      throw std::invalid_argument("Schema: duplicate attribute name '" + a.name + "'");
    }
    if (a.kind == AttributeKind::kCategorical && a.cardinality <= 0) {
      throw std::invalid_argument(
          "Schema: categorical attribute '" + a.name +
          "' must have positive cardinality");
    }
  }
}

bool Schema::operator==(const Schema& other) const {
  if (num_classes_ != other.num_classes_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    const auto& a = attributes_[i];
    const auto& b = other.attributes_[i];
    if (a.name != b.name || a.kind != b.kind) return false;
    if (a.kind == AttributeKind::kCategorical && a.cardinality != b.cardinality) {
      return false;
    }
  }
  return true;
}

}  // namespace scalparc::data
