// Low-overhead per-rank span tracer with Chrome trace_event JSON export.
//
// A TraceScope is an RAII span: construction stamps the wall clock, the
// destructor records one TraceSpan into the ring buffer of the emitting
// rank's lane (the rank comes from util::thread_rank(), bound per thread by
// mp::run_ranks). Spans carry the induction level, the active node/record
// counts, the bytes packed into fused collective rounds, and — because the
// runtime's notion of time is the modeled virtual clock, not the wall clock
// — both a wall [ts, dur] pair and a [vtime_begin, vtime_end] pair. Phase
// spans tile the induction loop, so summing vtime deltas per rank reproduces
// InductionStats::total_seconds (scalparc-trace-report checks this).
//
// Cost discipline: when the collector is idle a scope is one relaxed atomic
// load; when active it is two steady_clock reads plus one short mutex-held
// ring write (a handful of spans per level — far below the <5% overhead
// budget). Compiling with -DSCALPARC_TRACE=OFF turns TraceScope into an
// empty shell and removes the recording path entirely; the collector API
// stays callable so callers need no #ifdefs, but start() reports failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef SCALPARC_TRACE_ENABLED
#define SCALPARC_TRACE_ENABLED 1
#endif

namespace scalparc::util {

class Json;

constexpr bool trace_compiled_in() { return SCALPARC_TRACE_ENABLED != 0; }

struct TraceSpan {
  const char* name = "";  // static string (phase name)
  int rank = -1;
  int level = -1;              // induction level; -1 when not applicable
  std::int64_t nodes = -1;     // active nodes at the level, -1 when n/a
  std::int64_t records = -1;   // active records at the level, -1 when n/a
  std::int64_t bytes = -1;     // bytes packed into fused rounds, -1 when n/a
  double ts_s = 0.0;           // wall-clock begin, seconds since process start
  double dur_s = 0.0;          // wall-clock duration
  double vtime_begin = 0.0;    // modeled virtual clock at begin/end; both 0
  double vtime_end = 0.0;      //   when the span carries no vtime
  int depth = 0;               // nesting depth within the rank at begin
  std::uint64_t seq = 0;       // per-rank completion order
};

struct TraceConfig {
  // Spans retained per rank; the ring overwrites the oldest on overflow.
  std::size_t ring_capacity = 1 << 16;
  // Record every n-th completed span per rank (1 = all). Sampled-out spans
  // count into TraceDump::sampled_out, not dropped.
  int sample_every = 1;
};

struct TraceDump {
  std::vector<TraceSpan> spans;  // sorted by (rank, seq)
  std::uint64_t dropped = 0;     // spans lost to ring overflow
  std::uint64_t sampled_out = 0;
  int sample_every = 1;
  // True when every recorded span is retained: sampling off and no
  // overflow. Only then do per-rank vtime sums tile the full run.
  bool complete() const { return sample_every == 1 && dropped == 0; }
};

// Process-global span sink. start() arms recording (clearing previous
// spans); stop() disarms and returns everything retained. Recording from
// concurrent rank threads is safe; start/stop are meant for the coordinating
// thread (CLI, test body) between runs.
class TraceCollector {
 public:
  static TraceCollector& instance();

  // Returns false when tracing was compiled out (SCALPARC_TRACE=OFF).
  bool start(const TraceConfig& config = {});
  bool active() const;
  TraceDump stop();

 private:
  TraceCollector() = default;
};

class TraceScope {
 public:
  explicit TraceScope(const char* name, int level = -1,
                      std::int64_t nodes = -1, std::int64_t records = -1);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_bytes(std::int64_t bytes);
  void set_begin_vtime(double vtime);
  void set_end_vtime(double vtime);

 private:
#if SCALPARC_TRACE_ENABLED
  bool armed_ = false;
  std::uint64_t generation_ = 0;
  TraceSpan span_;
#endif
};

// Stable Chrome/Perfetto thread-lane id for a span name: the five paper
// phases get lanes 1..5 in §4 order, auxiliary spans (checkpointing, level
// bookkeeping) follow, unknown names share the last lane.
int trace_lane_of(std::string_view name);
std::string_view trace_lane_name(int lane);
int trace_num_lanes();

// Chrome trace_event document: one "X" (complete) event per span with
// pid = rank and tid = phase lane, plus process/thread-name metadata events.
// `metadata` (an object: ranks, sample_every, dropped, metrics, ...) is
// embedded under "otherData", where scalparc-trace-report reads it back.
Json chrome_trace_json(const TraceDump& dump, const Json& metadata);

}  // namespace scalparc::util
