// Elastic restore: load a level checkpoint written by a different world size.
//
// A level checkpoint stores each writer rank's attribute-list partitions as
// per-node segments whose concatenation in writer-rank order is the node's
// globally sorted segment. Restoring under a different rank count (the
// shrink-to-survivors recovery path: p-1 survivors reload a p-rank
// checkpoint) therefore reduces to a repartition that preserves exactly that
// invariant:
//
//   1. Each new rank reads a *contiguous block* of writer-rank partitions
//      (CRC-verified through CheckpointRankReader) and concatenates them per
//      node in writer order — every held piece stays a contiguous range of
//      the node's global segment, and new ranks in order tile it.
//   2. An exscan/allreduce over per-node sizes establishes each rank's global
//      position within every node segment.
//   3. Node by node, the global segment is re-tiled into the canonical
//      equal_partition_sizes layout and entries are routed to their new
//      owners with one counts alltoallv plus one entry alltoallv (the same
//      scatter shape the distributed node table uses).
//   4. Receivers reassemble node-major in source order; sources hold
//      ascending writer blocks, so source order *is* global order.
//
// The result is bit-identical data in the canonical layout for the new world
// size, so induction continues to the byte-identical tree.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "sort/partition_util.hpp"
#include "util/trace.hpp"

namespace scalparc::core {

template <typename Entry>
struct RestoredList {
  std::vector<Entry> entries;
  std::vector<std::size_t> offsets;  // per-node segment bounds, size m+1
};

// Collective. Restores the checkpoint sections `tag` / `tag`_off written by
// `writer_ranks` ranks into comm.size() balanced partitions. `num_nodes` is
// the active-node count of the checkpointed level (from active.bin). With a
// non-empty `weights` (one positive weight per current rank) the new tiling
// is proportional instead of uniform — the straggler-rebalance policy's
// lever for steering work away from a slow rank; uniform weights reproduce
// the canonical layout bit for bit. Throws CheckpointError on missing,
// truncated, corrupt or inconsistent sections.
template <typename Entry>
RestoredList<Entry> elastic_restore_list(mp::Comm& comm,
                                         const std::string& level_dir,
                                         int writer_ranks,
                                         const std::string& tag,
                                         std::size_t num_nodes,
                                         std::span<const double> weights = {}) {
  const int p = comm.size();
  const auto r = static_cast<std::size_t>(comm.rank());
  const std::size_t m = num_nodes;
  if (!weights.empty() && weights.size() != static_cast<std::size_t>(p)) {
    throw CheckpointError(
        "elastic restore: rank_weights size does not match the world size");
  }

  util::TraceScope span("elastic_restore", /*level=*/-1,
                        /*nodes=*/static_cast<std::int64_t>(m));
  span.set_begin_vtime(comm.vtime());
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    sink->add("checkpoint.elastic_restores", 1);
  }

  // 1. Read this rank's contiguous block of writer partitions.
  const std::vector<std::size_t> block_sizes = sort::equal_partition_sizes(
      static_cast<std::size_t>(writer_ranks), p);
  const std::vector<std::size_t> block_offsets =
      sort::offsets_from_sizes(block_sizes);
  std::vector<std::vector<Entry>> per_node(m);
  for (std::size_t o = block_offsets[r]; o < block_offsets[r + 1]; ++o) {
    CheckpointRankReader reader(level_dir, static_cast<int>(o));
    const std::vector<Entry> entries = reader.read_section<Entry>(tag);
    const std::vector<std::uint64_t> raw =
        reader.read_section<std::uint64_t>(tag + "_off");
    if (raw.size() != m + 1 || raw.front() != 0 ||
        raw.back() != entries.size() ||
        !std::is_sorted(raw.begin(), raw.end())) {
      throw CheckpointError("writer rank " + std::to_string(o) +
                            " has inconsistent segment offsets for '" + tag +
                            "'");
    }
    for (std::size_t i = 0; i < m; ++i) {
      per_node[i].insert(
          per_node[i].end(),
          entries.begin() + static_cast<std::ptrdiff_t>(raw[i]),
          entries.begin() + static_cast<std::ptrdiff_t>(raw[i + 1]));
    }
  }

  // 2. Global geometry of every node segment.
  std::vector<std::int64_t> local_sizes(m);
  for (std::size_t i = 0; i < m; ++i) {
    local_sizes[i] = static_cast<std::int64_t>(per_node[i].size());
  }
  const std::vector<std::int64_t> starts =
      mp::exscan_vec(comm, std::span<const std::int64_t>(local_sizes),
                     mp::SumOp{}, std::int64_t{0});
  const std::vector<std::int64_t> global_sizes =
      mp::allreduce_vec(comm, std::span<const std::int64_t>(local_sizes),
                        mp::SumOp{});

  // 3. Slice every held piece against the new owners' windows.
  std::vector<std::vector<Entry>> sendbufs(static_cast<std::size_t>(p));
  std::vector<std::vector<std::int64_t>> sendcounts(
      static_cast<std::size_t>(p), std::vector<std::int64_t>(m, 0));
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<std::size_t> target_offsets = sort::offsets_from_sizes(
        weights.empty()
            ? sort::equal_partition_sizes(
                  static_cast<std::size_t>(global_sizes[i]), p)
            : sort::weighted_partition_sizes(
                  static_cast<std::size_t>(global_sizes[i]), weights));
    const std::int64_t my_begin = starts[i];
    const std::int64_t my_end = my_begin + local_sizes[i];
    for (int d = 0; d < p; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const std::int64_t lo = std::max(
          my_begin, static_cast<std::int64_t>(target_offsets[ds]));
      const std::int64_t hi = std::min(
          my_end, static_cast<std::int64_t>(target_offsets[ds + 1]));
      if (lo >= hi) continue;
      sendcounts[ds][i] = hi - lo;
      sendbufs[ds].insert(
          sendbufs[ds].end(),
          per_node[i].begin() + static_cast<std::ptrdiff_t>(lo - my_begin),
          per_node[i].begin() + static_cast<std::ptrdiff_t>(hi - my_begin));
    }
    per_node[i].clear();
    per_node[i].shrink_to_fit();
  }

  // 4. Counts first, then entries.
  const std::vector<std::vector<std::int64_t>> recvcounts =
      mp::alltoallv(comm, sendcounts);
  std::vector<std::vector<Entry>> arrived = mp::alltoallv(comm, sendbufs);

  // 5. Reassemble node-major, sources in ascending order.
  RestoredList<Entry> out;
  out.offsets.assign(m + 1, 0);
  std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
  for (std::size_t i = 0; i < m; ++i) {
    out.offsets[i] = out.entries.size();
    for (int s = 0; s < p; ++s) {
      const auto ss = static_cast<std::size_t>(s);
      if (recvcounts[ss].size() != m) {
        throw CheckpointError(
            "elastic restore: peer sent a malformed counts vector for '" +
            tag + "'");
      }
      const auto n = static_cast<std::size_t>(recvcounts[ss][i]);
      if (cursor[ss] + n > arrived[ss].size()) {
        throw CheckpointError(
            "elastic restore: peer counts overrun its entries for '" + tag +
            "'");
      }
      out.entries.insert(
          out.entries.end(),
          arrived[ss].begin() + static_cast<std::ptrdiff_t>(cursor[ss]),
          arrived[ss].begin() +
              static_cast<std::ptrdiff_t>(cursor[ss] + n));
      cursor[ss] += n;
    }
  }
  out.offsets[m] = out.entries.size();
  for (int s = 0; s < p; ++s) {
    if (cursor[static_cast<std::size_t>(s)] !=
        arrived[static_cast<std::size_t>(s)].size()) {
      throw CheckpointError(
          "elastic restore: peer sent more entries than its counts for '" +
          tag + "'");
    }
  }
  span.set_bytes(static_cast<std::int64_t>(out.entries.size() * sizeof(Entry)));
  span.set_end_vtime(comm.vtime());
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    std::size_t moved = 0;
    for (const std::vector<Entry>& buf : sendbufs) moved += buf.size();
    sink->add("recovery.retile_bytes",
              static_cast<double>(moved * sizeof(Entry)));
  }
  return out;
}

}  // namespace scalparc::core
