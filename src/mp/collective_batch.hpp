// Fused collectives: pack many heterogeneous contributions into one buffer
// and run them as a single communication round.
//
// ScalParC's split determination issues, per tree level, one exscan per
// continuous attribute list for its count matrices, a second for its segment
// boundaries, and one reduce (or allreduce) per categorical list — so the
// latency term of the cost model scales with the number of attributes
// instead of the tree depth. A CollectiveBatch restores the per-*level*
// communication structure the paper argues for (§3): every contribution is
// appended to a packed byte buffer with an offset directory, and the whole
// buffer moves through ONE collective whose combine step dispatches
// per-segment (each segment remembers its element type's combine functor).
//
// Supported rounds (all SPMD: every rank must add identical directories —
// same segment order, element types, sizes and roots — then call the same
// round):
//   exscan()         distance doubling over the packed buffer; every
//                    segment receives its element-wise exclusive prefix
//   allreduce()      binomial reduce to rank 0 + binomial broadcast
//   reduce_rooted()  each segment is reduced to its own root rank by a
//                    direct exchange (every rank sends one packed message
//                    per distinct root); only the root's view is defined
//   bcast_rooted()   each segment is published by its root to all ranks
//
// Segments may be empty. reset() clears the directory but keeps buffer
// capacity so a batch can be reused across tree levels without
// reallocating. Combine functors must be stateless (empty class) so they
// can be re-instantiated inside the type-erased dispatch thunk.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "mp/comm.hpp"

namespace scalparc::mp {

class CollectiveBatch {
 public:
  explicit CollectiveBatch(Comm& comm) : comm_(comm) {}

  CollectiveBatch(const CollectiveBatch&) = delete;
  CollectiveBatch& operator=(const CollectiveBatch&) = delete;

  // Appends `local` as a new segment; returns its id (position in the
  // directory). `identity` seeds the exclusive prefix of exscan(); `root`
  // names the owning rank for reduce_rooted()/bcast_rooted() and is ignored
  // by exscan()/allreduce().
  template <WireType T, typename Combine>
  std::size_t add(std::span<const T> local, Combine, const T& identity = T{},
                  int root = 0) {
    static_assert(std::is_empty_v<Combine> &&
                      std::is_default_constructible_v<Combine>,
                  "CollectiveBatch combine functors must be stateless");
    static_assert(sizeof(T) <= kMaxElemSize,
                  "CollectiveBatch element type too large");
    if (root < 0 || root >= comm_.size()) {
      throw std::invalid_argument("CollectiveBatch::add: bad root");
    }
    Segment seg;
    // Pad every segment start to a max_align_t boundary so typed views of
    // the packed buffer are always aligned.
    seg.offset = aligned_size(buffer_.size());
    seg.bytes = local.size_bytes();
    seg.elem_size = sizeof(T);
    seg.root = root;
    seg.combine = &combine_thunk<T, Combine>;
    std::memcpy(seg.identity, &identity, sizeof(T));
    buffer_.resize(seg.offset + seg.bytes);
    if (seg.bytes > 0) {
      std::memcpy(buffer_.data() + seg.offset, local.data(), seg.bytes);
    }
    segments_.push_back(seg);
    return segments_.size() - 1;
  }

  std::size_t num_segments() const { return segments_.size(); }
  // Total packed payload bytes (one collective moves all of it at once).
  std::size_t packed_bytes() const { return buffer_.size(); }

  // --- rounds (each is one collective operation in mp::Stats) -------------
  void exscan();
  void allreduce();
  void reduce_rooted();
  void bcast_rooted();

  // Typed view of a segment's current contents (the result after a round).
  // After reduce_rooted() only the segment's root holds the reduced value.
  template <WireType T>
  std::span<const T> view(std::size_t segment) const {
    const Segment& seg = segments_.at(segment);
    if (seg.elem_size != sizeof(T)) {
      throw std::invalid_argument("CollectiveBatch::view: element size mismatch");
    }
    return {reinterpret_cast<const T*>(buffer_.data() + seg.offset),
            seg.bytes / sizeof(T)};
  }

  // Copies a segment's contents out (survives reset()).
  template <WireType T>
  std::vector<T> take(std::size_t segment) const {
    const std::span<const T> v = view<T>(segment);
    return std::vector<T>(v.begin(), v.end());
  }

  // Clears the directory for the next round, keeping buffer capacity.
  void reset() {
    segments_.clear();
    buffer_.clear();
  }

 private:
  static constexpr std::size_t kMaxElemSize = 64;

  // Element-wise combine over one segment's raw bytes. `incoming_left`
  // selects the argument order, acc = combine(incoming, acc) vs
  // combine(acc, incoming) — exscan folds the left neighbour in from the
  // left, which matters for non-commutative combines (e.g. "rightmost
  // non-empty wins" boundary propagation).
  using CombineFn = void (*)(std::byte* acc, const std::byte* incoming,
                             std::size_t bytes, bool incoming_left);

  template <WireType T, typename Combine>
  static void combine_thunk(std::byte* acc, const std::byte* incoming,
                            std::size_t bytes, bool incoming_left) {
    const Combine combine{};
    const std::size_t n = bytes / sizeof(T);
    for (std::size_t i = 0; i < n; ++i) {
      T a, b;
      std::memcpy(&a, acc + i * sizeof(T), sizeof(T));
      std::memcpy(&b, incoming + i * sizeof(T), sizeof(T));
      const T out = incoming_left ? combine(b, a) : combine(a, b);
      std::memcpy(acc + i * sizeof(T), &out, sizeof(T));
    }
  }

  struct Segment {
    std::size_t offset = 0;
    std::size_t bytes = 0;
    std::size_t elem_size = 0;
    int root = 0;
    CombineFn combine = nullptr;
    std::byte identity[kMaxElemSize] = {};
  };

  static std::size_t aligned_size(std::size_t n) {
    constexpr std::size_t a = alignof(std::max_align_t);
    return (n + a - 1) / a * a;
  }

  // Folds `incoming` (a peer's packed buffer, identical layout) into `dst`.
  void combine_all(std::byte* dst, std::span<const std::byte> incoming,
                   bool incoming_left) const;
  // Packs the segments owned by `root` into `pack_` (directory order).
  void pack_rooted(int root);
  bool owns_any(int root) const;

  Comm& comm_;
  std::vector<Segment> segments_;
  std::vector<std::byte> buffer_;
  std::vector<std::byte> exclusive_;  // exscan scratch, reused across calls
  std::vector<std::byte> pack_;       // rooted-round scratch
};

}  // namespace scalparc::mp
