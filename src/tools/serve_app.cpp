// scalparc-serve — batched scoring service over the mp runtime.
//
// Loads a tree_io model snapshot (through the hardened loader — a hostile
// or damaged snapshot is rejected with the offending line), compiles it
// into the flat inference engine, and fans record batches across worker
// ranks: each rank streams its shard of the workload through
// CompiledTree::predict_batch, taking a shared_ptr snapshot of the served
// model per batch. With --swap-model, the service performs an atomic
// hot-swap to a second snapshot after --swap-after batches have been served
// globally: in-flight batches finish on the old model, the next batch on
// every rank picks up the new one, and the old compiled tree is freed when
// its last in-flight batch completes.
//
// Reports records/sec (total and per rank), per-batch tail latency
// (p50/p95/p99/max), and — when labels are present — a per-class
// precision/recall/F1 quality table. Telemetry lands in the predict.*
// family of the metrics registry (docs/observability.md).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled_tree.hpp"
#include "core/predict.hpp"
#include "core/tree_io.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "mp/collectives.hpp"
#include "mp/metrics.hpp"
#include "mp/runtime.hpp"
#include "mp/telemetry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace {

using scalparc::util::Json;

constexpr const char* kUsage =
    R"(scalparc-serve — batched scoring service with hot-swap

usage: scalparc-serve --model FILE [flags]

  --model FILE      tree_io snapshot to serve (required)
  --data FILE       CSV workload to score (labels drive the quality report)
  --records N       synthetic workload size when --data is absent
                    (default 200000)
  --function F1..F7 synthetic labeling function (default F2)
  --seed S          synthetic workload seed (default 1)
  --ranks P         worker ranks scoring in parallel (default 4)
  --batch B         records per scoring batch (default 1024)
  --rounds R        passes over the workload, for sustained load (default 1)
  --swap-model FILE snapshot to hot-swap in mid-run (same schema)
  --swap-after N    global batches served before the swap
                    (default: half the total)
  --quality         print the per-class precision/recall/F1 table
  --report FILE     write a scalparc-serve-v1 JSON report
  --metrics-out FILE  write the merged metrics registry as JSON

continuous telemetry (all off by default; docs/observability.md):
  --telemetry-out FILE        append scalparc-timeseries-v1 JSONL epochs
  --telemetry-interval-ms N   sampling epoch length (default 250)
  --expose-out FILE           Prometheus text exposition, atomically
                              rewritten each epoch
  --flight-out FILE           flight-recorder ring dumped as
                              scalparc-flight-v1 JSONL at exit (and on
                              SIGINT/SIGTERM or error exit)
  --slo-p99-us X              rolling-window p99 latency target; maintains
                              the slo.* metrics family
)";

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    // Force the SCALPARC_LOG_FORMAT env parse up front: a garbage value must
    // fail the run loudly, not lie dormant until the first log line.
    util::log_format();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scalparc-serve: %s\n", e.what());
    return 2;
  }

  const std::string model_path = args.get_string("model", "");
  if (model_path.empty()) {
    std::fputs("scalparc-serve: --model FILE is required\n\n", stderr);
    std::fputs(kUsage, stderr);
    return 2;
  }
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 1024));
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 1));
  if (ranks < 1 || batch < 1 || rounds < 1) {
    std::fputs("scalparc-serve: --ranks, --batch and --rounds must be >= 1\n",
               stderr);
    return 2;
  }

  // ---- continuous telemetry knobs ----------------------------------------
  const std::string telemetry_path = args.get_string("telemetry-out", "");
  const std::string expose_path = args.get_string("expose-out", "");
  const std::string flight_path = args.get_string("flight-out", "");
  const auto telemetry_interval_ms =
      static_cast<int>(args.get_int("telemetry-interval-ms", 250));
  if (telemetry_interval_ms < 1) {
    std::fputs("scalparc-serve: --telemetry-interval-ms must be >= 1\n",
               stderr);
    return 2;
  }
  const double slo_p99_us = args.get_double("slo-p99-us", 0.0);
  if (args.has("slo-p99-us") && slo_p99_us <= 0.0) {
    std::fputs("scalparc-serve: --slo-p99-us must be > 0\n", stderr);
    return 2;
  }

  // Arm the flight recorder before anything can fail so error exits always
  // leave a (possibly empty) postmortem document behind.
  if (!flight_path.empty()) {
    telemetry::set_flight_capacity(256);
    telemetry::arm_flight_dump(flight_path);
  }

  try {
    // ---- model ingestion (hardened loader) -------------------------------
    const core::DecisionTree tree = core::load_tree_file(model_path);
    if (tree.empty()) {
      std::fputs("scalparc-serve: model snapshot holds an empty tree\n",
                 stderr);
      return 2;
    }
    auto model = std::make_shared<const core::CompiledTree>(
        core::CompiledTree::compile(tree));
    core::ModelHandle handle(model);

    std::shared_ptr<const core::CompiledTree> next_model;
    const std::string swap_path = args.get_string("swap-model", "");
    if (!swap_path.empty()) {
      const core::DecisionTree next_tree = core::load_tree_file(swap_path);
      if (next_tree.empty() || !(next_tree.schema() == tree.schema())) {
        std::fputs(
            "scalparc-serve: --swap-model snapshot is empty or its schema "
            "does not match the served model\n",
            stderr);
        return 2;
      }
      next_model = std::make_shared<const core::CompiledTree>(
          core::CompiledTree::compile(next_tree));
    }

    // ---- workload --------------------------------------------------------
    data::Dataset workload;
    const std::string data_path = args.get_string("data", "");
    if (!data_path.empty()) {
      workload = data::read_csv_file(data_path);
      if (!(workload.schema() == tree.schema())) {
        std::fputs(
            "scalparc-serve: workload schema does not match the model's\n",
            stderr);
        return 2;
      }
    } else {
      data::GeneratorConfig config;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      config.function =
          data::parse_label_function(args.get_string("function", "F2"));
      const data::QuestGenerator generator(config);
      if (!(generator.schema() == tree.schema())) {
        std::fputs(
            "scalparc-serve: the synthetic generator's schema does not match "
            "the model (was it trained on generated data with default "
            "--attributes?); pass --data instead\n",
            stderr);
        return 2;
      }
      workload = generator.generate(
          0, static_cast<std::size_t>(args.get_int("records", 200000)));
    }
    const std::size_t records = workload.num_records();
    if (records == 0) {
      std::fputs("scalparc-serve: empty workload\n", stderr);
      return 2;
    }

    // Global batch count and the swap trigger.
    std::size_t total_batches = 0;
    for (int r = 0; r < ranks; ++r) {
      const std::size_t lo = records * static_cast<std::size_t>(r) /
                             static_cast<std::size_t>(ranks);
      const std::size_t hi = records * (static_cast<std::size_t>(r) + 1) /
                             static_cast<std::size_t>(ranks);
      total_batches += rounds * ((hi - lo + batch - 1) / batch);
    }
    const auto swap_after = static_cast<std::uint64_t>(args.get_int(
        "swap-after", static_cast<std::int64_t>(total_batches / 2)));
    if (args.has("swap-after") && swap_path.empty()) {
      std::fputs("scalparc-serve: --swap-after needs --swap-model\n", stderr);
      return 2;
    }

    // ---- continuous telemetry -------------------------------------------
    std::unique_ptr<telemetry::SloTracker> slo;
    if (slo_p99_us > 0.0) {
      slo = std::make_unique<telemetry::SloTracker>(slo_p99_us);
    }
    std::unique_ptr<telemetry::TelemetryExporter> exporter;
    if (!telemetry_path.empty() || !expose_path.empty() || slo != nullptr) {
      telemetry::TelemetryOptions topts;
      topts.timeseries_path = telemetry_path;
      topts.expose_path = expose_path;
      topts.interval_ms = telemetry_interval_ms;
      if (slo != nullptr) {
        telemetry::SloTracker* tracker = slo.get();
        topts.epoch_hook = [tracker](mp::MetricsSnapshot& merged,
                                     double epoch_seconds) {
          tracker->epoch_tick(epoch_seconds);
          merged.merge(tracker->metrics());
        };
      }
      exporter =
          std::make_unique<telemetry::TelemetryExporter>(std::move(topts));
    }

    // ---- the scoring run -------------------------------------------------
    const std::int32_t num_classes = tree.schema().num_classes();
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(ranks));
    std::vector<std::vector<std::int64_t>> cells(
        static_cast<std::size_t>(ranks),
        std::vector<std::int64_t>(
            static_cast<std::size_t>(num_classes) *
                static_cast<std::size_t>(num_classes),
            0));
    std::atomic<std::uint64_t> served{0};
    std::atomic<bool> swapped{false};

    mp::RunResult run = mp::run_ranks(
        ranks, mp::CostModel::zero(), [&](mp::Comm& comm) {
          const auto rank = static_cast<std::size_t>(comm.rank());
          const std::size_t lo = records * rank /
                                 static_cast<std::size_t>(ranks);
          const std::size_t hi = records * (rank + 1) /
                                 static_cast<std::size_t>(ranks);
          std::vector<std::int32_t> out(batch);
          latencies[rank].reserve(rounds * ((hi - lo) / batch + 1));
          // Live publishing is rate-limited to half the sampling epoch so
          // the exporter always sees fresh counters while the per-batch
          // cost stays one steady_clock read (and nothing at all when
          // telemetry is off — the enabled() gate is a relaxed load).
          const std::string publish_source =
              "serve-rank" + std::to_string(rank);
          const auto publish_every =
              std::chrono::milliseconds(std::max(1, telemetry_interval_ms / 2));
          auto last_publish = std::chrono::steady_clock::now();
          mp::barrier(comm);
          for (std::size_t round = 0; round < rounds; ++round) {
            for (std::size_t begin = lo; begin < hi; begin += batch) {
              const std::size_t end = std::min(begin + batch, hi);
              // Snapshot per batch: a concurrent hot-swap never touches the
              // model this batch is scoring with.
              const std::shared_ptr<const core::CompiledTree> serving =
                  handle.get();
              util::Stopwatch timer;
              serving->predict_batch(
                  workload, begin, end,
                  std::span<std::int32_t>(out.data(), end - begin));
              const double seconds = timer.elapsed_seconds();
              latencies[rank].push_back(seconds);
              const auto micros = static_cast<std::uint64_t>(seconds * 1e6);
              if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
                sink->observe("predict.batch_us", micros);
              }
              if (slo != nullptr) slo->observe_latency_us(micros);
              for (std::size_t i = 0; i < end - begin; ++i) {
                const auto actual = static_cast<std::size_t>(
                    workload.label(begin + i));
                ++cells[rank][actual * static_cast<std::size_t>(num_classes) +
                              static_cast<std::size_t>(out[i])];
              }
              comm.add_work(static_cast<double>(end - begin));
              const std::uint64_t n =
                  served.fetch_add(1, std::memory_order_acq_rel) + 1;
              if (next_model != nullptr && n >= swap_after &&
                  !swapped.exchange(true, std::memory_order_acq_rel)) {
                handle.swap(next_model);
              }
              if (telemetry::live_metrics_enabled()) {
                const auto now = std::chrono::steady_clock::now();
                if (now - last_publish >= publish_every) {
                  last_publish = now;
                  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
                    telemetry::publish_metrics(publish_source, *sink);
                  }
                }
              }
            }
          }
          // Final publish so the exporter's last epoch matches this rank's
          // end state.
          if (telemetry::live_metrics_enabled()) {
            if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
              telemetry::publish_metrics(publish_source, *sink);
            }
          }
        });

    // Final telemetry epoch (every rank has published its end state), then
    // fold the exporter-owned slo.* family into the merged registry so the
    // report and --metrics-out carry it.
    if (exporter != nullptr) exporter->stop();
    if (slo != nullptr) run.metrics.merge(slo->metrics());

    // ---- aggregation -----------------------------------------------------
    std::vector<double> all_latencies;
    for (const auto& lane : latencies) {
      all_latencies.insert(all_latencies.end(), lane.begin(), lane.end());
    }
    std::sort(all_latencies.begin(), all_latencies.end());
    std::vector<std::int64_t> total_cells(
        static_cast<std::size_t>(num_classes) *
            static_cast<std::size_t>(num_classes),
        0);
    for (const auto& lane : cells) {
      for (std::size_t i = 0; i < lane.size(); ++i) total_cells[i] += lane[i];
    }
    const core::ConfusionMatrix quality =
        core::ConfusionMatrix::from_cells(num_classes, total_cells);
    const double scored = static_cast<double>(records) *
                          static_cast<double>(rounds);
    const double records_per_s = scored / run.wall_seconds;
    const double p50 = percentile(all_latencies, 0.50) * 1e6;
    const double p95 = percentile(all_latencies, 0.95) * 1e6;
    const double p99 = percentile(all_latencies, 0.99) * 1e6;
    const double max_us =
        all_latencies.empty() ? 0.0 : all_latencies.back() * 1e6;

    std::printf("served %zu record(s) x %zu round(s) on %d rank(s), batch %zu\n",
                records, rounds, ranks, batch);
    std::printf("model: %s (%d flat node(s), depth %d%s)\n", model_path.c_str(),
                model->num_nodes(), model->depth(),
                model->all_continuous() ? ", branchless continuous kernel" : "");
    if (next_model != nullptr) {
      std::printf("hot-swap: %s after %llu batch(es) — %llu swap(s) applied\n",
                  swap_path.c_str(),
                  static_cast<unsigned long long>(swap_after),
                  static_cast<unsigned long long>(handle.swaps()));
    }
    std::printf("throughput: %.3e records/s (%.3e records/s/rank)\n",
                records_per_s, records_per_s / ranks);
    std::printf("batch latency: p50 %.1f us, p95 %.1f us, p99 %.1f us, max %.1f us\n",
                p50, p95, p99, max_us);
    if (slo != nullptr) {
      const mp::MetricsSnapshot slo_metrics = slo->metrics();
      std::printf(
          "slo: target p99 %.1f us, windowed p99 %.1f us, %d breach(es), "
          "%.3f s burn\n",
          slo_p99_us, slo->windowed_p99_us(),
          static_cast<int>(slo_metrics.value("slo.breaches")),
          slo_metrics.value("slo.burn_seconds"));
    }
    if (exporter != nullptr) {
      std::printf("telemetry: %d epoch(s) every %d ms%s%s\n",
                  exporter->epochs(), telemetry_interval_ms,
                  telemetry_path.empty() ? ""
                                         : (" -> " + telemetry_path).c_str(),
                  expose_path.empty() ? ""
                                      : (", expose " + expose_path).c_str());
    }
    std::printf("accuracy: %.4f over %lld record(s)\n", quality.accuracy(),
                static_cast<long long>(quality.total()));
    if (args.get_bool("quality", false)) {
      std::printf("%6s %10s %10s %10s\n", "class", "precision", "recall", "f1");
      for (std::int32_t cls = 0; cls < num_classes; ++cls) {
        std::printf("%6d %10.4f %10.4f %10.4f\n", cls, quality.precision(cls),
                    quality.recall(cls), quality.f1(cls));
      }
    }

    // ---- reports ---------------------------------------------------------
    const std::string report_path = args.get_string("report", "");
    if (!report_path.empty()) {
      Json doc = Json::object();
      doc["format"] = "scalparc-serve-v1";
      doc["model"] = model_path;
      doc["ranks"] = ranks;
      doc["batch_records"] = static_cast<std::int64_t>(batch);
      doc["rounds"] = static_cast<std::int64_t>(rounds);
      doc["workload_records"] = static_cast<std::int64_t>(records);
      doc["batches_served"] =
          static_cast<std::int64_t>(served.load(std::memory_order_relaxed));
      doc["swaps"] = static_cast<std::int64_t>(handle.swaps());
      doc["records_per_s"] = records_per_s;
      doc["records_per_s_per_rank"] = records_per_s / ranks;
      Json latency = Json::object();
      latency["p50_us"] = p50;
      latency["p95_us"] = p95;
      latency["p99_us"] = p99;
      latency["max_us"] = max_us;
      doc["latency"] = std::move(latency);
      Json quality_doc = Json::object();
      quality_doc["accuracy"] = quality.accuracy();
      Json classes = Json::array();
      for (std::int32_t cls = 0; cls < num_classes; ++cls) {
        Json row = Json::object();
        row["class"] = cls;
        row["precision"] = quality.precision(cls);
        row["recall"] = quality.recall(cls);
        row["f1"] = quality.f1(cls);
        classes.push_back(std::move(row));
      }
      quality_doc["classes"] = std::move(classes);
      doc["quality"] = std::move(quality_doc);
      doc["metrics"] = run.metrics.to_json();
      std::ofstream out(report_path);
      out << doc.dump(1) << "\n";
      if (!out) {
        std::fprintf(stderr, "scalparc-serve: cannot write %s\n",
                     report_path.c_str());
        return 2;
      }
      std::printf("report written to %s\n", report_path.c_str());
    }
    const std::string metrics_path = args.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      Json doc = Json::object();
      doc["format"] = "scalparc-metrics-v1";
      doc["ranks"] = ranks;
      doc["metrics"] = run.metrics.to_json();
      std::ofstream out(metrics_path);
      out << doc.dump(1) << "\n";
      if (!out) {
        std::fprintf(stderr, "scalparc-serve: cannot write %s\n",
                     metrics_path.c_str());
        return 2;
      }
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (!flight_path.empty()) {
      if (telemetry::dump_flight(flight_path)) {
        std::printf("flight recorder written to %s (%zu event(s))\n",
                    flight_path.c_str(), telemetry::flight_events().size());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    // Error exit: the postmortem starts with the last things the system did.
    scalparc::telemetry::dump_armed_flight();
    std::fprintf(stderr, "scalparc-serve: %s\n", e.what());
    return 1;
  }
}
