file(REMOVE_RECURSE
  "CMakeFiles/hash_paradigm.dir/hash_paradigm.cpp.o"
  "CMakeFiles/hash_paradigm.dir/hash_paradigm.cpp.o.d"
  "hash_paradigm"
  "hash_paradigm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_paradigm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
