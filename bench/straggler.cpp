// Gray-failure bench: what does one slow-but-alive rank cost, and how much
// of that cost does phi-accrual detection + slow-rank rebalance win back?
//
//   ./straggler [--records N] [--ranks P] [--depth D] [--slow-rank R]
//               [--factor F] [--spwu S] [--sustain-s T] [--min-speedup X]
//               [--csv DIR] [--out BENCH_straggler.json]
//               [--validate BENCH_straggler.json]
//
// Three phases over the same workload (realized modeled work, so a throttled
// rank is *busy*, not dead — the gray failure the health layer exists for):
//
//   clean        health monitoring + adaptive timeouts on, no fault. Must
//                complete with zero straggler classifications (the false-
//                positive sweep) and the oracle tree.
//   unmitigated  a whole-run `slow:r=R,factor=F` fault, health off. The run
//                completes, but every level crawls at the straggler's pace.
//   mitigated    same fault, detection on, RecoveryPolicy::kRebalance. The
//                health layer classifies the straggler, the retry re-tiles
//                the checkpointed attribute lists away from it (weight
//                1/slowdown), and the fit finishes on the *same* world with
//                the same byte-identical tree.
//
// Pass criteria: all three trees byte-identical to the fault-free oracle,
// zero clean-run classifications, and mitigated at least --min-speedup
// faster than unmitigated. --out writes the machine-readable JSON document;
// --validate re-parses one and re-checks the claims (the CI smoke path).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/tree_io.hpp"
#include "mp/fault.hpp"
#include "mp/metrics.hpp"
#include "util/json.hpp"

namespace {

using scalparc::util::Json;

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

std::string tree_bytes(const scalparc::core::DecisionTree& tree) {
  std::ostringstream out;
  scalparc::core::save_tree(tree, out);
  return out.str();
}

bool validate(const Json& doc) {
  const auto complain = [](const std::string& what) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    return false;
  };
  try {
    if (doc.at("format").as_string() != "scalparc-bench-straggler-v1") {
      return complain("format tag is not scalparc-bench-straggler-v1");
    }
    if (doc.at("ranks").as_int() < 2) return complain("ranks < 2");
    if (doc.at("slow_factor").as_double() <= 1.0) {
      return complain("slow_factor must exceed 1");
    }
    const Json& clean = doc.at("clean");
    if (clean.at("stragglers_detected").as_int() != 0) {
      return complain("clean run classified a straggler (false positive)");
    }
    if (!clean.at("tree_matches_oracle").as_bool()) {
      return complain("clean tree diverged from the oracle");
    }
    // details.metrics (absent in documents written before it existed) must
    // decode as a registry snapshot whose health counters agree with the
    // summary fields next to it.
    const Json* clean_details = clean.find("details");
    if (clean_details != nullptr) {
      const scalparc::mp::MetricsSnapshot snapshot =
          scalparc::mp::MetricsSnapshot::from_json(
              clean_details->at("metrics"));
      if (snapshot.value("induction.levels") <= 0.0) {
        return complain("clean details.metrics lacks induction.levels");
      }
      if (snapshot.value("health.stragglers_detected", 0.0) !=
          static_cast<double>(clean.at("stragglers_detected").as_int())) {
        return complain(
            "clean details.metrics disagrees with stragglers_detected");
      }
    }
    const Json& unmitigated = doc.at("unmitigated");
    if (!unmitigated.at("tree_matches_oracle").as_bool()) {
      return complain("unmitigated tree diverged from the oracle");
    }
    const Json& mitigated = doc.at("mitigated");
    if (!mitigated.at("tree_matches_oracle").as_bool()) {
      return complain("mitigated tree diverged from the oracle");
    }
    if (mitigated.at("straggler_rank").as_int() !=
        doc.at("slow_rank").as_int()) {
      return complain("detected straggler is not the throttled rank");
    }
    if (mitigated.at("slowdown_estimate").as_double() < 1.5) {
      return complain("slowdown estimate is implausibly small");
    }
    if (mitigated.at("rebalances").as_int() < 1) {
      return complain("mitigated run never applied a rebalance");
    }
    const Json* mitigated_details = mitigated.find("details");
    if (mitigated_details != nullptr) {
      const scalparc::mp::MetricsSnapshot snapshot =
          scalparc::mp::MetricsSnapshot::from_json(
              mitigated_details->at("metrics"));
      if (snapshot.value("induction.levels") <= 0.0) {
        return complain("mitigated details.metrics lacks induction.levels");
      }
      if (snapshot.value("comm.bytes_sent") <= 0.0) {
        return complain("mitigated details.metrics lacks comm.bytes_sent");
      }
    }
    const double speedup = mitigated.at("speedup_vs_unmitigated").as_double();
    const double min_speedup = doc.at("min_speedup").as_double();
    if (speedup < min_speedup) {
      char msg[128];
      std::snprintf(msg, sizeof(msg),
                    "mitigated speedup %.2fx is below the %.2fx floor",
                    speedup, min_speedup);
      return complain(msg);
    }
  } catch (const std::exception& e) {
    return complain(std::string("schema: ") + e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::string out_path = args.get_string("out", "");
  const std::string validate_path = args.get_string("validate", "");
  if (out_path.empty() && !validate_path.empty()) {
    // Pure validation mode: re-check an existing document (CI revalidation).
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in && buffer.str().empty()) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 2;
    }
    if (!validate(util::Json::parse(buffer.str()))) return 1;
    std::printf("validation OK: %s\n", validate_path.c_str());
    return 0;
  }

  const auto records =
      static_cast<std::uint64_t>(args.get_int("records", 16000));
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const int depth = static_cast<int>(args.get_int("depth", 10));
  const int slow_rank =
      static_cast<int>(args.get_int("slow-rank", ranks - 1));
  const double factor = args.get_double("factor", 8.0);
  const double spwu = args.get_double("spwu", 4e-6);
  // The sustain window is sized so classification lands *after* the first
  // level checkpoint commits (the root level is the largest: ~3.5-4 s under
  // an 8x throttle at the default scale): the retry then resumes from the
  // checkpoint with the non-uniform weights instead of restarting from
  // scratch and escalating to a demotion.
  const double sustain_s = args.get_double("sustain-s", 4.0);
  const double min_speedup = args.get_double("min-speedup", 1.5);

  // Label noise keeps the frontier impure all the way to the depth cap, so
  // every level carries realized work — a tree that collapses to pure leaves
  // after two levels has nothing for a straggler to slow down.
  data::GeneratorConfig gen_config;
  gen_config.seed = 1;
  gen_config.function = data::LabelFunction::kF2;
  gen_config.num_attributes = 7;
  gen_config.label_noise = 0.2;
  const data::Dataset training =
      data::QuestGenerator(gen_config).generate(0, records);

  core::InductionControls controls;
  controls.options.max_depth = depth;
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(training, ranks, controls).tree);

  const std::string ckpt_root =
      (std::filesystem::temp_directory_path() /
       ("scalparc_straggler_bench_" + std::to_string(::getpid())))
          .string();
  core::InductionControls ckpt_controls = controls;
  ckpt_controls.checkpoint.directory = ckpt_root;

  // Realized work makes the modeled per-level compute real wall time, which
  // the slow fault then throttles by `factor` on the victim rank.
  mp::CostModel model = mp::CostModel::zero();
  model.seconds_per_work_unit = spwu;
  model.realize_work = true;

  mp::HealthOptions health;
  health.detect_stragglers = true;
  health.adaptive_timeouts = true;
  health.sustain_s = sustain_s;
  health.min_blocked_s = 0.25;

  std::printf(
      "straggler bench: %llu records, p=%d, depth %d, slow r%d x%.0f\n\n",
      static_cast<unsigned long long>(records), ranks, depth, slow_rank,
      factor);

  // ---- clean: the false-positive sweep --------------------------------
  core::FitReport clean;
  const double clean_s = wall_seconds([&] {
    mp::RunOptions run_options;
    run_options.health = health;
    clean = core::ScalParC::fit(training, ranks, controls, model, run_options);
  });
  const int clean_stragglers = static_cast<int>(
      clean.run.metrics.value("health.stragglers_detected", 0.0));
  const bool clean_matches = tree_bytes(clean.tree) == oracle;
  std::printf("clean (health on):   %8.3f s  stragglers=%d\n", clean_s,
              clean_stragglers);
  if (clean_stragglers != 0) {
    std::printf("ERROR: clean run classified a straggler (false positive)\n");
    return 1;
  }

  const std::string slow_spec = "slow:r=" + std::to_string(slow_rank) +
                                ",factor=" + std::to_string(factor);

  // ---- unmitigated: the straggler drags every level -------------------
  core::FitReport unmitigated;
  const double unmitigated_s = wall_seconds([&] {
    mp::FaultPlan plan;
    plan.parse(slow_spec);
    mp::RunOptions run_options;
    run_options.fault_plan = &plan;
    unmitigated =
        core::ScalParC::fit(training, ranks, controls, model, run_options);
  });
  const bool unmitigated_matches = tree_bytes(unmitigated.tree) == oracle;
  std::printf("unmitigated:         %8.3f s  (%.2fx the clean run)\n",
              unmitigated_s, unmitigated_s / clean_s);

  // ---- mitigated: detect, rebalance, finish on the same world ---------
  // The slow fault persists across attempts (a gray failure does not heal
  // because the job restarted), so every schedule segment carries it.
  mp::FaultSchedule schedule;
  for (int i = 0; i < 4; ++i) schedule.add_plan().parse(slow_spec);
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kRebalance;
  recovery.max_retries = 3;
  recovery.fault_schedule = &schedule;

  std::filesystem::remove_all(ckpt_root);
  core::RecoveryReport mitigated;
  const double mitigated_s = wall_seconds([&] {
    mp::RunOptions run_options;
    run_options.health = health;
    mitigated = core::ScalParC::fit_with_recovery(training, ranks,
                                                  ckpt_controls, recovery,
                                                  model, run_options);
  });
  std::filesystem::remove_all(ckpt_root);
  if (mitigated.outcome != core::RecoveryOutcome::kCompleted) {
    std::printf("ERROR: mitigated run did not complete (outcome %s)\n",
                core::to_string(mitigated.outcome));
    return 1;
  }
  const bool mitigated_matches = tree_bytes(mitigated.fit.tree) == oracle;
  int detected_rank = -1, resumed_level = -1, rebalances = 0, demotions = 0;
  double slowdown = 0.0;
  for (const core::RecoveryEvent& event : mitigated.events) {
    if (event.policy != core::RecoveryPolicy::kRebalance) continue;
    if (event.demoted) {
      ++demotions;
      continue;
    }
    ++rebalances;
    detected_rank = event.straggler_rank;
    slowdown = event.straggler_slowdown;
    resumed_level = event.resumed_level;
  }
  const double speedup = unmitigated_s / mitigated_s;
  std::printf("mitigated:           %8.3f s  (%.2fx vs unmitigated; "
              "classified r%d x%.1f, resumed at level %d)\n\n",
              mitigated_s, speedup, detected_rank, slowdown, resumed_level);

  bench::CsvWriter csv(args, "straggler.csv",
                       "phase,wall_s,stragglers,tree_matches");
  csv.row("clean,%.6f,%d,%d", clean_s, clean_stragglers, clean_matches ? 1 : 0);
  csv.row("unmitigated,%.6f,0,%d", unmitigated_s, unmitigated_matches ? 1 : 0);
  csv.row("mitigated,%.6f,%d,%d", mitigated_s, rebalances,
          mitigated_matches ? 1 : 0);

  Json doc = Json::object();
  doc["format"] = Json("scalparc-bench-straggler-v1");
  doc["records"] = Json(static_cast<double>(records));
  doc["ranks"] = Json(static_cast<double>(ranks));
  doc["depth"] = Json(static_cast<double>(depth));
  doc["slow_rank"] = Json(static_cast<double>(slow_rank));
  doc["slow_factor"] = Json(factor);
  doc["min_speedup"] = Json(min_speedup);
  Json clean_json = Json::object();
  clean_json["wall_s"] = Json(clean_s);
  clean_json["stragglers_detected"] = Json(static_cast<double>(clean_stragglers));
  clean_json["tree_matches_oracle"] = Json(clean_matches);
  Json clean_details = Json::object();
  clean_details["metrics"] = clean.run.metrics.to_json();
  clean_json["details"] = std::move(clean_details);
  doc["clean"] = std::move(clean_json);
  Json unmitigated_json = Json::object();
  unmitigated_json["wall_s"] = Json(unmitigated_s);
  unmitigated_json["tree_matches_oracle"] = Json(unmitigated_matches);
  doc["unmitigated"] = std::move(unmitigated_json);
  Json mitigated_json = Json::object();
  mitigated_json["wall_s"] = Json(mitigated_s);
  mitigated_json["speedup_vs_unmitigated"] = Json(speedup);
  mitigated_json["straggler_rank"] = Json(static_cast<double>(detected_rank));
  mitigated_json["slowdown_estimate"] = Json(slowdown);
  mitigated_json["rebalances"] = Json(static_cast<double>(rebalances));
  mitigated_json["demotions"] = Json(static_cast<double>(demotions));
  mitigated_json["resumed_level"] = Json(static_cast<double>(resumed_level));
  mitigated_json["tree_matches_oracle"] = Json(mitigated_matches);
  Json mitigated_details = Json::object();
  mitigated_details["metrics"] = mitigated.fit.run.metrics.to_json();
  mitigated_json["details"] = std::move(mitigated_details);
  doc["mitigated"] = std::move(mitigated_json);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("JSON written to %s\n", out_path.c_str());
  }
  if (!validate(doc)) return 1;
  if (!validate_path.empty()) {
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in && buffer.str().empty()) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 2;
    }
    if (!validate(util::Json::parse(buffer.str()))) return 1;
    std::printf("validation OK: %s\n", validate_path.c_str());
  }
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}
