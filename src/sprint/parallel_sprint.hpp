// Parallel SPRINT baseline (§3.2): identical split determination to
// ScalParC, but the splitting phase replicates the full rid -> child hash
// table on every processor via an allgather — O(N) communication and memory
// per processor, the formulation the paper shows to be unscalable.
//
// These are thin facades selecting SplittingStrategy::kReplicatedHash so the
// two systems differ on exactly the axis the paper compares.
#pragma once

#include <cstdint>

#include "core/scalparc.hpp"

namespace scalparc::sprint {

core::FitReport fit_parallel_sprint(
    const data::Dataset& training, int nranks,
    core::InductionControls controls = {},
    const mp::CostModel& model = mp::CostModel::zero());

core::FitReport fit_parallel_sprint_generated(
    const data::QuestGenerator& generator, std::uint64_t total_records,
    int nranks, core::InductionControls controls = {},
    const mp::CostModel& model = mp::CostModel::zero());

}  // namespace scalparc::sprint
