// Unified typed metrics registry.
//
// Before this layer, run telemetry was fragmented across ad-hoc structs
// (core::LevelStats, mp::CommStats, mp::ChannelStats, ooc::IoStats) that
// each needed bespoke aggregation and printing. A MetricsSnapshot is the
// common currency: a name -> Metric map with three kinds —
//
//   counter    merge by sum       (bytes sent, retransmits, hash probes)
//   gauge      merge by max       (peak memory, phase seconds, occupancy)
//   histogram  merge bucket-wise  (message sizes, probe lengths; fixed
//                                  log2 buckets so merging never re-bins)
//
// All three merges are associative and commutative, so per-rank snapshots
// can be folded in any order (tests assert this). Naming convention is
// dotted lowercase families: comm.*, transport.*, runtime.*, induction.*,
// checkpoint.*, hash.*, nodetable.*, io.*, memory.* — see
// docs/observability.md for the full catalog.
//
// Instrumented code reaches its rank's snapshot through the thread-local
// sink bound by run_ranks (metrics_sink(); nullptr outside a rank thread),
// and the absorb_* helpers translate the legacy structs into families.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "mp/stats.hpp"

namespace scalparc::util {
class Json;
}

namespace scalparc::mp {

struct ChannelStats;  // mp/mailbox.hpp

// Bucket b holds values v with 2^(b-1) <= v < 2^b (bucket 0 holds v == 0);
// the last bucket absorbs everything >= 2^62.
inline constexpr std::size_t kHistogramBuckets = 64;

struct Histogram {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  static std::size_t bucket_of(std::uint64_t value);
  void observe(std::uint64_t value);
  Histogram& operator+=(const Histogram& other);
};

// Quantile estimate from the log2 buckets: walks the cumulative counts to
// the bucket holding the q-th observation and interpolates linearly inside
// its [2^(b-1), 2^b) value range, clamped to the observed max. Returns 0
// for an empty histogram. q is clamped to [0, 1].
double histogram_quantile(const Histogram& histogram, double q);

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view metric_kind_name(MetricKind kind);

struct Metric {
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;   // counter: running sum; gauge: running max
  Histogram histogram;  // kHistogram only
};

class MetricsSnapshot {
 public:
  // std::map keeps iteration (and JSON dumps) deterministically sorted.
  using Map = std::map<std::string, Metric, std::less<>>;

  void add(std::string_view name, double delta = 1.0);
  void gauge_max(std::string_view name, double value);
  void observe(std::string_view name, std::uint64_t value);
  void merge_histogram(std::string_view name, const Histogram& histogram);

  bool empty() const { return metrics_.empty(); }
  std::size_t size() const { return metrics_.size(); }
  const Map& metrics() const { return metrics_; }
  const Metric* find(std::string_view name) const;
  // Counter/gauge value by name; `fallback` when absent.
  double value(std::string_view name, double fallback = 0.0) const;

  // Folds `other` in. Throws std::logic_error when the same name carries
  // different kinds (a naming bug, never a data race).
  void merge(const MetricsSnapshot& other);

  util::Json to_json() const;
  static MetricsSnapshot from_json(const util::Json& doc);

 private:
  Metric& slot(std::string_view name, MetricKind kind);

  Map metrics_;
};

// Thread-local snapshot the current rank's instrumentation writes into;
// nullptr outside run_ranks (instrumented code then skips recording).
MetricsSnapshot* metrics_sink();

class MetricsSinkGuard {
 public:
  explicit MetricsSinkGuard(MetricsSnapshot* sink);
  ~MetricsSinkGuard();
  MetricsSinkGuard(const MetricsSinkGuard&) = delete;
  MetricsSinkGuard& operator=(const MetricsSinkGuard&) = delete;

 private:
  MetricsSnapshot* saved_;
};

// Legacy-struct absorbers (comm.* / transport.* families).
void absorb_comm_stats(MetricsSnapshot& snapshot, const CommStats& stats);
void absorb_channel_stats(MetricsSnapshot& snapshot, const ChannelStats& stats);
// io.* family; takes plain values so the mp layer needs no ooc dependency.
void absorb_io_stats(MetricsSnapshot& snapshot, std::uint64_t bytes_written,
                     std::uint64_t bytes_read, std::uint64_t files_created,
                     std::uint64_t extra_passes);

}  // namespace scalparc::mp
