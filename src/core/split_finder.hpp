// Split determination (FindSplitI / FindSplitII, §4).
//
// A SplitCandidate is the wire form of one possible split of one node. It is
// totally ordered by (gini, attribute, kind, threshold, subset) so that an
// element-wise min-allreduce over per-node candidate arrays yields the same
// winner on every rank and for every processor count.
//
// Continuous splits follow the paper's condition "A < v for some value v in
// its domain": candidates are evaluated at every distinct attribute value v,
// with the records strictly below v forming the left partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/options.hpp"
#include "data/attribute_list.hpp"

namespace scalparc::core {

enum class SplitKind : std::int32_t {
  kContinuous = 0,
  kCategoricalMultiWay = 1,
  kCategoricalSubset = 2,
};

struct SplitCandidate {
  double gini = std::numeric_limits<double>::infinity();
  std::int32_t attribute = -1;
  SplitKind kind = SplitKind::kContinuous;
  // Continuous: the value v of the winning "A < v" condition.
  double threshold = 0.0;
  // kCategoricalSubset: bit v set means value v goes to child 0. Limits
  // subset splits to cardinality <= 64 (checked by best_categorical_split).
  std::uint64_t subset = 0;

  bool valid() const { return gini < std::numeric_limits<double>::infinity(); }
};

// Strict total order; `a < b` means a is the preferred candidate.
bool candidate_less(const SplitCandidate& a, const SplitCandidate& b);

// Combine functor selecting the preferred candidate (for min-allreduce).
struct CandidateMinOp {
  SplitCandidate operator()(const SplitCandidate& a,
                            const SplitCandidate& b) const {
    return candidate_less(b, a) ? b : a;
  }
};

// Scans one local fragment of a node's sorted continuous-attribute segment,
// improving `best` in place. `scanner` must be positioned at the fragment
// start (below-counts from the FindSplitI parallel prefix); `has_prev` /
// `prev_value` describe the last attribute value on any earlier rank within
// the same node (from the boundary exscan). Returns the number of work units
// performed (one per entry). Works with either impurity scanner; the
// recompute scanner makes this the differential oracle for the columnar
// kernel below.
template <typename Scanner>
std::size_t scan_continuous_segment(std::span<const data::ContinuousEntry> segment,
                                    Scanner& scanner, bool has_prev,
                                    double prev_value, std::int32_t attribute,
                                    SplitCandidate& best) {
  double prev = prev_value;
  bool has = has_prev;
  for (const data::ContinuousEntry& entry : segment) {
    if (has && entry.value != prev) {
      // Candidate "A < entry.value": the left partition is exactly the
      // records advanced so far (all have value <= prev < entry.value).
      const double g = scanner.current_impurity();
      SplitCandidate candidate;
      candidate.gini = g;
      candidate.attribute = attribute;
      candidate.kind = SplitKind::kContinuous;
      candidate.threshold = entry.value;
      if (candidate_less(candidate, best)) best = candidate;
    }
    scanner.advance(entry.cls);
    prev = entry.value;
    has = true;
  }
  return segment.size();
}

// Columnar scan kernel: same contract as scan_continuous_segment over
// records [begin, end) of a SoA fragment, with the per-record work
// restructured for the hardware. Equal values are grouped into runs; the
// impurity is evaluated once per run boundary in O(1) (incremental sums of
// squares), and class counting inside a run is a branchless reduction over
// the cls stream that auto-vectorizes in the two-class case. Produces
// bitwise-identical decisions to the entry scan.
std::size_t scan_continuous_columns(const data::ContinuousColumns& cols,
                                    std::size_t begin, std::size_t end,
                                    IncrementalImpurityScanner& scanner,
                                    bool has_prev, double prev_value,
                                    std::int32_t attribute,
                                    SplitCandidate& best);

// Best categorical split of a node given its *global* count matrix
// (rows = value codes, cols = classes). Multi-way: one child per value with
// records; requires at least two non-empty values. Subset mode additionally
// evaluates a greedy binary partition of the values (footnote of §2) and is
// limited to cardinality <= 64. Returns an invalid candidate if no split
// exists.
SplitCandidate best_categorical_split(
    const CountMatrix& matrix, std::int32_t attribute, CategoricalSplit mode,
    SplitCriterion criterion = SplitCriterion::kGini);

}  // namespace scalparc::core
