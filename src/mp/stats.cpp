#include "mp/stats.hpp"

namespace scalparc::mp {

std::string_view comm_op_name(CommOp op) {
  switch (op) {
    case CommOp::kPointToPoint:
      return "p2p";
    case CommOp::kBarrier:
      return "barrier";
    case CommOp::kBroadcast:
      return "bcast";
    case CommOp::kReduce:
      return "reduce";
    case CommOp::kAllreduce:
      return "allreduce";
    case CommOp::kScan:
      return "scan";
    case CommOp::kGather:
      return "gather";
    case CommOp::kAllgather:
      return "allgather";
    case CommOp::kAlltoall:
      return "alltoall";
  }
  return "unknown";
}

CommStats& CommStats::operator+=(const CommStats& other) {
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  messages_sent += other.messages_sent;
  messages_received += other.messages_received;
  for (int i = 0; i < kNumCommOps; ++i) {
    bytes_sent_by_op[i] += other.bytes_sent_by_op[i];
    calls_by_op[i] += other.calls_by_op[i];
  }
  work_units += other.work_units;
  return *this;
}

}  // namespace scalparc::mp
