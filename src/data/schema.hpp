// Training-set schema: attribute names, kinds and cardinalities.
//
// Mirrors the paper's data model (§1): records have continuous attributes
// (ordered real domain) and categorical attributes (finite discrete domain);
// one distinguished categorical attribute is the class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalparc::data {

enum class AttributeKind : std::int8_t {
  kContinuous = 0,
  kCategorical = 1,
};

struct AttributeInfo {
  std::string name;
  AttributeKind kind = AttributeKind::kContinuous;
  // Number of distinct values for categorical attributes (codes are
  // 0..cardinality-1); ignored for continuous attributes.
  std::int32_t cardinality = 0;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::vector<AttributeInfo> attributes, std::int32_t num_classes);

  static AttributeInfo continuous(std::string name);
  static AttributeInfo categorical(std::string name, std::int32_t cardinality);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const AttributeInfo& attribute(int index) const;
  std::int32_t num_classes() const { return num_classes_; }

  int num_continuous() const;
  int num_categorical() const;

  // Index of the attribute named `name`, or -1.
  int find(const std::string& name) const;

  // Throws std::invalid_argument on empty attribute set, fewer than two
  // classes, non-positive categorical cardinality or duplicate names.
  void validate() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<AttributeInfo> attributes_;
  std::int32_t num_classes_ = 0;
};

}  // namespace scalparc::data
