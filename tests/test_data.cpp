// Tests for the data layer: schema validation, columnar dataset, the Quest
// synthetic generator (determinism, distributions, label functions), CSV
// round-trips and attribute-list construction.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/attribute_list.hpp"
#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/schema.hpp"
#include "data/synthetic.hpp"

namespace scalparc {
namespace {

using data::AttributeKind;
using data::Dataset;
using data::GeneratorConfig;
using data::LabelFunction;
using data::QuestGenerator;
using data::Schema;

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(Schema, BasicAccessors) {
  Schema schema({Schema::continuous("x"), Schema::categorical("c", 4)}, 3);
  EXPECT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(schema.num_continuous(), 1);
  EXPECT_EQ(schema.num_categorical(), 1);
  EXPECT_EQ(schema.num_classes(), 3);
  EXPECT_EQ(schema.find("c"), 1);
  EXPECT_EQ(schema.find("missing"), -1);
  EXPECT_EQ(schema.attribute(1).cardinality, 4);
}

TEST(Schema, RejectsEmptyAttributes) {
  EXPECT_THROW(Schema({}, 2), std::invalid_argument);
}

TEST(Schema, RejectsSingleClass) {
  EXPECT_THROW(Schema({Schema::continuous("x")}, 1), std::invalid_argument);
}

TEST(Schema, RejectsDuplicateNames) {
  EXPECT_THROW(Schema({Schema::continuous("x"), Schema::continuous("x")}, 2),
               std::invalid_argument);
}

TEST(Schema, RejectsNonPositiveCardinality) {
  EXPECT_THROW(Schema({Schema::categorical("c", 0)}, 2), std::invalid_argument);
}

TEST(Schema, Equality) {
  Schema a({Schema::continuous("x")}, 2);
  Schema b({Schema::continuous("x")}, 2);
  Schema c({Schema::continuous("y")}, 2);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

Dataset small_dataset() {
  Schema schema({Schema::continuous("x"), Schema::categorical("c", 3),
                 Schema::continuous("y")},
                2);
  Dataset d(schema);
  const double cont0[] = {1.5, 2.5};
  const std::int32_t cat0[] = {0};
  d.append(cont0, cat0, 1);
  const double cont1[] = {-1.0, 0.0};
  const std::int32_t cat1[] = {2};
  d.append(cont1, cat1, 0);
  return d;
}

TEST(Dataset, AppendAndAccess) {
  const Dataset d = small_dataset();
  EXPECT_EQ(d.num_records(), 2u);
  EXPECT_DOUBLE_EQ(d.continuous_value(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(d.continuous_value(2, 0), 2.5);
  EXPECT_EQ(d.categorical_value(1, 1), 2);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.label(1), 0);
}

TEST(Dataset, KindMismatchThrows) {
  const Dataset d = small_dataset();
  EXPECT_THROW((void)d.continuous_value(1, 0), std::invalid_argument);
  EXPECT_THROW((void)d.categorical_value(0, 0), std::invalid_argument);
  EXPECT_THROW((void)d.continuous_value(9, 0), std::out_of_range);
}

TEST(Dataset, AppendCountMismatchThrows) {
  Dataset d(Schema({Schema::continuous("x")}, 2));
  const double two[] = {1.0, 2.0};
  EXPECT_THROW(d.append(two, {}, 0), std::invalid_argument);
}

TEST(Dataset, Slice) {
  const Dataset d = small_dataset();
  const Dataset s = d.slice(1, 2);
  ASSERT_EQ(s.num_records(), 1u);
  EXPECT_DOUBLE_EQ(s.continuous_value(0, 0), -1.0);
  EXPECT_EQ(s.label(0), 0);
  EXPECT_THROW((void)d.slice(1, 5), std::out_of_range);
}

TEST(Dataset, ValidateCatchesBadCodes) {
  Dataset d(Schema({Schema::categorical("c", 2)}, 2));
  const std::int32_t bad[] = {5};
  d.append({}, bad, 0);
  EXPECT_THROW(d.validate(), std::out_of_range);
}

TEST(Dataset, PayloadBytes) {
  const Dataset d = small_dataset();
  // 2 rows: 2 doubles + 1 int32 + 1 label each.
  EXPECT_EQ(d.payload_bytes(), 2 * (2 * sizeof(double) + 2 * sizeof(std::int32_t)));
}

// ---------------------------------------------------------------------------
// QuestGenerator
// ---------------------------------------------------------------------------

TEST(Quest, DeterministicPerRecord) {
  QuestGenerator g(GeneratorConfig{.seed = 9, .function = LabelFunction::kF2});
  const auto a = g.raw(12345);
  const auto b = g.raw(12345);
  EXPECT_DOUBLE_EQ(a.salary, b.salary);
  EXPECT_EQ(a.zipcode, b.zipcode);
  // Independent of generation order / batching.
  const Dataset batch = g.generate(12340, 10);
  EXPECT_DOUBLE_EQ(batch.continuous_value(0, 5), a.salary);
}

TEST(Quest, AttributeDomains) {
  QuestGenerator g(GeneratorConfig{.seed = 3, .num_attributes = 9});
  for (std::uint64_t rid = 0; rid < 2000; ++rid) {
    const auto r = g.raw(rid);
    EXPECT_GE(r.salary, 20e3);
    EXPECT_LT(r.salary, 150e3);
    if (r.salary >= 75e3) {
      EXPECT_DOUBLE_EQ(r.commission, 0.0);
    } else {
      EXPECT_GE(r.commission, 10e3);
      EXPECT_LT(r.commission, 75e3);
    }
    EXPECT_GE(r.age, 20.0);
    EXPECT_LT(r.age, 80.0);
    EXPECT_GE(r.elevel, 0);
    EXPECT_LE(r.elevel, 4);
    EXPECT_GE(r.car, 0);
    EXPECT_LE(r.car, 19);
    EXPECT_GE(r.zipcode, 0);
    EXPECT_LE(r.zipcode, 8);
    const double k = r.zipcode + 1;
    EXPECT_GE(r.hvalue, k * 50e3);
    EXPECT_LT(r.hvalue, k * 150e3);
    EXPECT_GE(r.hyears, 1.0);
    EXPECT_LT(r.hyears, 30.0);
    EXPECT_GE(r.loan, 0.0);
    EXPECT_LT(r.loan, 500e3);
  }
}

TEST(Quest, DefaultSchemaHasSevenAttributes) {
  QuestGenerator g(GeneratorConfig{});
  EXPECT_EQ(g.schema().num_attributes(), 7);
  EXPECT_EQ(g.schema().num_classes(), 2);
  EXPECT_EQ(g.schema().attribute(0).name, "salary");
  EXPECT_EQ(g.schema().attribute(3).kind, AttributeKind::kCategorical);
}

TEST(Quest, F1DependsOnlyOnAge) {
  data::QuestRecord r;
  r.age = 30;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF1), 1);
  r.age = 50;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF1), 0);
  r.age = 65;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF1), 1);
}

TEST(Quest, F2AgeSalaryBands) {
  data::QuestRecord r;
  r.age = 30;
  r.salary = 60e3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF2), 1);
  r.salary = 120e3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF2), 0);
  r.age = 50;
  r.salary = 120e3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF2), 1);
  r.age = 70;
  r.salary = 50e3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF2), 1);
  r.salary = 100e3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF2), 0);
}

TEST(Quest, F3UsesEducation) {
  data::QuestRecord r;
  r.age = 30;
  r.elevel = 0;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF3), 1);
  r.elevel = 3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF3), 0);
  r.age = 70;
  r.elevel = 3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF3), 1);
}

TEST(Quest, F7DisposableIncome) {
  data::QuestRecord r;
  r.salary = 100e3;
  r.commission = 0;
  r.loan = 0;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF7), 1);
  r.loan = 400e3;
  EXPECT_EQ(data::quest_label(r, LabelFunction::kF7), 0);
}

TEST(Quest, BothClassesOccur) {
  for (const LabelFunction f :
       {LabelFunction::kF1, LabelFunction::kF2, LabelFunction::kF3,
        LabelFunction::kF4, LabelFunction::kF5, LabelFunction::kF6,
        LabelFunction::kF7}) {
    QuestGenerator g(GeneratorConfig{.seed = 21, .function = f});
    int ones = 0;
    constexpr int kN = 3000;
    for (std::uint64_t rid = 0; rid < kN; ++rid) ones += g.label(rid);
    EXPECT_GT(ones, kN / 50) << "function " << static_cast<int>(f);
    EXPECT_LT(ones, kN - kN / 50) << "function " << static_cast<int>(f);
  }
}

TEST(Quest, LabelNoiseFlipsRoughlyTheRequestedFraction) {
  QuestGenerator clean(GeneratorConfig{.seed = 5, .label_noise = 0.0});
  QuestGenerator noisy(GeneratorConfig{.seed = 5, .label_noise = 0.2});
  int flips = 0;
  constexpr int kN = 5000;
  for (std::uint64_t rid = 0; rid < kN; ++rid) {
    flips += clean.label(rid) != noisy.label(rid);
    // Noise must not perturb the attributes themselves.
    EXPECT_DOUBLE_EQ(clean.raw(rid).salary, noisy.raw(rid).salary);
  }
  EXPECT_NEAR(flips / static_cast<double>(kN), 0.2, 0.03);
}

TEST(Quest, ParseLabelFunction) {
  EXPECT_EQ(data::parse_label_function("F5"), LabelFunction::kF5);
  EXPECT_EQ(data::parse_label_function("3"), LabelFunction::kF3);
  EXPECT_THROW(data::parse_label_function("F99"), std::invalid_argument);
}

TEST(Quest, RejectsBadConfig) {
  EXPECT_THROW(QuestGenerator(GeneratorConfig{.num_attributes = 0}),
               std::invalid_argument);
  EXPECT_THROW(QuestGenerator(GeneratorConfig{.num_attributes = 10}),
               std::invalid_argument);
  EXPECT_THROW(QuestGenerator(GeneratorConfig{.label_noise = 1.5}),
               std::invalid_argument);
}

TEST(Quest, BlockGenerationMatchesWholeGeneration) {
  QuestGenerator g(GeneratorConfig{.seed = 77});
  const Dataset whole = g.generate(0, 100);
  const Dataset left = g.generate(0, 40);
  const Dataset right = g.generate(40, 60);
  for (std::size_t row = 0; row < 40; ++row) {
    EXPECT_DOUBLE_EQ(whole.continuous_value(0, row), left.continuous_value(0, row));
    EXPECT_EQ(whole.label(row), left.label(row));
  }
  for (std::size_t row = 0; row < 60; ++row) {
    EXPECT_DOUBLE_EQ(whole.continuous_value(0, 40 + row),
                     right.continuous_value(0, row));
    EXPECT_EQ(whole.label(40 + row), right.label(row));
  }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(Csv, RoundTrip) {
  QuestGenerator g(GeneratorConfig{.seed = 123});
  const Dataset original = g.generate(0, 50);
  std::stringstream buffer;
  data::write_csv(original, buffer);
  const Dataset loaded = data::read_csv(buffer);
  ASSERT_EQ(loaded.num_records(), original.num_records());
  EXPECT_TRUE(loaded.schema() == original.schema());
  for (std::size_t row = 0; row < loaded.num_records(); ++row) {
    EXPECT_EQ(loaded.label(row), original.label(row));
    EXPECT_EQ(loaded.categorical_value(3, row), original.categorical_value(3, row));
    EXPECT_DOUBLE_EQ(loaded.continuous_value(0, row),
                     original.continuous_value(0, row));
  }
}

TEST(Csv, RejectsMissingHeader) {
  std::stringstream empty;
  EXPECT_THROW((void)data::read_csv(empty), std::runtime_error);
}

TEST(Csv, RejectsMalformedHeaderColumn) {
  std::stringstream in("x:weird,class:2\n1.0,0\n");
  EXPECT_THROW((void)data::read_csv(in), std::runtime_error);
}

TEST(Csv, RejectsRowWithWrongCellCount) {
  std::stringstream in("x:cont,class:2\n1.0\n");
  EXPECT_THROW((void)data::read_csv(in), std::runtime_error);
}

TEST(Csv, RejectsNonNumericCell) {
  std::stringstream in("x:cont,class:2\nfoo,0\n");
  EXPECT_THROW((void)data::read_csv(in), std::runtime_error);
}

TEST(Csv, RejectsOutOfRangeCategoricalCode) {
  std::stringstream in("c:cat:2,class:2\n7,0\n");
  EXPECT_THROW((void)data::read_csv(in), std::runtime_error);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream in("x:cont,class:2\n1.0,0\n\n2.0,1\n");
  const Dataset d = data::read_csv(in);
  EXPECT_EQ(d.num_records(), 2u);
}

TEST(Csv, FileRoundTrip) {
  QuestGenerator g(GeneratorConfig{.seed = 5});
  const Dataset original = g.generate(0, 10);
  const std::string path = ::testing::TempDir() + "/scalparc_csv_test.csv";
  data::write_csv_file(original, path);
  const Dataset loaded = data::read_csv_file(path);
  EXPECT_EQ(loaded.num_records(), 10u);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW((void)data::read_csv_file("/nonexistent/file.csv"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Attribute lists
// ---------------------------------------------------------------------------

TEST(AttributeList, BuildContinuous) {
  const Dataset d = small_dataset();
  const auto list = data::build_continuous_list(d, 0, /*first_rid=*/100);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list[0].value, 1.5);
  EXPECT_EQ(list[0].rid, 100);
  EXPECT_EQ(list[0].cls, 1);
  EXPECT_EQ(list[1].rid, 101);
}

TEST(AttributeList, BuildCategorical) {
  const Dataset d = small_dataset();
  const auto list = data::build_categorical_list(d, 1, /*first_rid=*/0);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].value, 0);
  EXPECT_EQ(list[1].value, 2);
  EXPECT_EQ(list[1].cls, 0);
}

TEST(AttributeList, LessComparatorBreaksTiesByRid) {
  data::ContinuousEntry a{1.0, 5, 0, 0};
  data::ContinuousEntry b{1.0, 7, 0, 0};
  data::ContinuousEntry c{0.5, 9, 0, 0};
  data::ContinuousEntryLess less;
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_TRUE(less(c, a));
}

}  // namespace
}  // namespace scalparc
