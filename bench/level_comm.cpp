// Per-level communication structure across split modes.
//
// Two axes in one document. First, fused vs unfused collectives under the
// exact engine: ScalParC's split determination issues one collective per
// attribute list per level; the fused CollectiveBatch path packs them into
// O(1) rounds per level (see DESIGN.md, "Collective fusion"). Second, the
// split-mode sweep (exact | histogram | voting): the histogram engine merges
// fixed-width class histograms instead of moving node-table traffic, so its
// per-level bytes are O(attributes x bins x classes) — independent of the
// training-set size — where the exact engine's are O(N/p). Every mode is
// fitted at two record scales (N and 2N) so the flatness claim is checkable
// from the document itself, and the quantized modes record their
// winner-attribute agreement and holdout-accuracy delta against the exact
// engine's tree on the same training set.
//
//   ./level_comm [--records N] [--procs 2,4,8,16] [--depth D] [--seed S]
//                [--bins B] [--top-k K]
//                [--out BENCH_comm.json] [--validate BENCH_comm.json]
//                [--csv DIR]
//
// --out writes the machine-readable JSON document; --validate re-parses a
// document (the one just written, or any existing one) and checks its
// schema plus the headline claims — fused modeled vtime <= unfused at every
// measured processor count, and histogram-mode first-level bytes flat in
// the record count while the exact engine's grow with it — exiting non-zero
// on violation. The `perf` ctest label runs this at tiny scale as a smoke
// test.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/tree.hpp"
#include "mp/metrics.hpp"
#include "util/json.hpp"

namespace {

using scalparc::core::DecisionTree;
using scalparc::core::LevelStats;
using scalparc::core::SplitMode;
using scalparc::util::Json;

struct RunRow {
  int procs = 0;
  std::string mode;  // "exact" | "histogram" | "voting"
  bool fused = false;
  std::uint64_t records = 0;
  double total_vtime_s = 0.0;
  double findsplit_vtime_s = 0.0;
  std::uint64_t max_bytes_sent_per_rank = 0;
  double holdout_accuracy = 0.0;
  // vs the exact engine's tree on the same training set; 1.0 / 0.0 for the
  // exact runs themselves.
  double winner_agreement = 1.0;
  double accuracy_delta = 0.0;
  std::vector<LevelStats> levels;
  double presort_vtime_s = 0.0;
  // Merged metrics registry of the run (comm.*, induction.*, ...), embedded
  // under "details" so downstream tooling reads one vocabulary across the
  // CLI's --metrics-out and the bench documents.
  Json details;
};

// Fraction of positionally paired internal nodes (lockstep walk from the
// roots, descending only where both trees split the same attribute into the
// same number of children) that choose the same split attribute — the
// PV-Tree-style quality metric: how often quantized split finding elects the
// exact engine's winner.
double winner_agreement(const DecisionTree& exact, const DecisionTree& other) {
  std::vector<std::pair<int, int>> frontier = {{exact.root(), other.root()}};
  std::int64_t paired = 0;
  std::int64_t agreed = 0;
  while (!frontier.empty()) {
    const auto [a_id, b_id] = frontier.back();
    frontier.pop_back();
    const auto& a = exact.node(a_id);
    const auto& b = other.node(b_id);
    if (a.is_leaf || b.is_leaf) continue;
    ++paired;
    if (a.split.attribute != b.split.attribute) continue;
    ++agreed;
    if (a.split.num_children != b.split.num_children) continue;
    for (int k = 0; k < a.split.num_children; ++k) {
      frontier.emplace_back(a.children[static_cast<std::size_t>(k)],
                            b.children[static_cast<std::size_t>(k)]);
    }
  }
  return paired == 0
             ? 1.0
             : static_cast<double>(agreed) / static_cast<double>(paired);
}

Json to_json(const RunRow& row) {
  Json run = Json::object();
  run["procs"] = row.procs;
  run["split_mode"] = row.mode;
  run["fused"] = row.fused;
  run["records"] = row.records;
  run["total_vtime_s"] = row.total_vtime_s;
  run["findsplit_vtime_s"] = row.findsplit_vtime_s;
  run["max_bytes_sent_per_rank"] = row.max_bytes_sent_per_rank;
  run["holdout_accuracy"] = row.holdout_accuracy;
  run["winner_agreement_vs_exact"] = row.winner_agreement;
  run["accuracy_delta_vs_exact"] = row.accuracy_delta;
  Json levels = Json::array();
  double prev_vtime = row.presort_vtime_s;
  for (const LevelStats& level : row.levels) {
    Json entry = Json::object();
    entry["level"] = level.level;
    entry["active_nodes"] = level.active_nodes;
    entry["active_records"] = level.active_records;
    entry["collective_calls"] = level.collective_calls;
    entry["max_bytes_sent_per_rank"] = level.max_bytes_sent_per_rank;
    entry["vtime_s"] = level.vtime_end - prev_vtime;
    prev_vtime = level.vtime_end;
    levels.push_back(std::move(entry));
  }
  run["levels"] = std::move(levels);
  run["details"] = row.details;
  return run;
}

// Schema + claim validation; prints the first violation and returns false.
bool validate(const Json& doc) {
  const auto complain = [](const std::string& why) {
    std::fprintf(stderr, "BENCH_comm.json validation failed: %s\n",
                 why.c_str());
    return false;
  };
  struct Key {
    int procs;
    std::int64_t records;
    bool operator<(const Key& o) const {
      return procs != o.procs ? procs < o.procs : records < o.records;
    }
  };
  try {
    if (doc.at("bench").as_string() != "level_comm") {
      return complain("bench name is not 'level_comm'");
    }
    if (doc.at("records").as_int() <= 0) return complain("records <= 0");
    const auto& runs = doc.at("runs").as_array();
    if (runs.empty()) return complain("runs is empty");
    std::map<Key, double> fused_vtime, unfused_vtime;
    // First-level max bytes per (procs, mode, records) — the raw material of
    // the flatness claim.
    std::map<int, std::map<std::string, std::map<std::int64_t, std::int64_t>>>
        level1_bytes;
    for (const Json& run : runs) {
      const int procs = static_cast<int>(run.at("procs").as_int());
      if (procs <= 0) return complain("run has procs <= 0");
      const std::string mode = run.at("split_mode").as_string();
      if (mode != "exact" && mode != "histogram" && mode != "voting") {
        return complain("run has unknown split_mode '" + mode + "'");
      }
      const std::int64_t records = run.at("records").as_int();
      if (records <= 0) return complain("run has records <= 0");
      const bool fused = run.at("fused").as_bool();
      const double total = run.at("total_vtime_s").as_double();
      if (!(total > 0.0)) return complain("run has total_vtime_s <= 0");
      if (run.at("findsplit_vtime_s").as_double() < 0.0) {
        return complain("run has negative findsplit_vtime_s");
      }
      if (run.at("max_bytes_sent_per_rank").as_int() < 0) {
        return complain("run has negative byte count");
      }
      const double agreement = run.at("winner_agreement_vs_exact").as_double();
      if (agreement < 0.0 || agreement > 1.0) {
        return complain("winner_agreement_vs_exact outside [0, 1]");
      }
      const double delta = run.at("accuracy_delta_vs_exact").as_double();
      if (delta < -1.0 || delta > 1.0) {
        return complain("accuracy_delta_vs_exact outside [-1, 1]");
      }
      const double holdout = run.at("holdout_accuracy").as_double();
      if (holdout < 0.0 || holdout > 1.0) {
        return complain("holdout_accuracy outside [0, 1]");
      }
      const auto& levels = run.at("levels").as_array();
      if (levels.empty()) return complain("run has no levels");
      for (const Json& level : levels) {
        if (level.at("active_nodes").as_int() <= 0 ||
            level.at("active_records").as_int() <= 0 ||
            level.at("collective_calls").as_int() <= 0 ||
            level.at("max_bytes_sent_per_rank").as_int() < 0 ||
            level.at("vtime_s").as_double() < 0.0) {
          return complain("level entry out of range");
        }
      }
      if (fused) {
        level1_bytes[procs][mode][records] =
            levels.front().at("max_bytes_sent_per_rank").as_int();
      }
      // details.metrics must decode as a metrics registry snapshot with the
      // comm.* family present (the vocabulary shared with --metrics-out);
      // quantized runs must additionally account their histogram traffic.
      const Json* details = run.find("details");
      if (details != nullptr) {
        const scalparc::mp::MetricsSnapshot snapshot =
            scalparc::mp::MetricsSnapshot::from_json(details->at("metrics"));
        if (snapshot.value("comm.bytes_sent") <= 0.0) {
          return complain("details.metrics lacks comm.bytes_sent");
        }
        if (mode != "exact" && snapshot.value("comm.histogram_bytes") <= 0.0) {
          return complain("quantized run lacks comm.histogram_bytes");
        }
      }
      if (mode == "exact") {
        (fused ? fused_vtime : unfused_vtime)[Key{procs, records}] = total;
      }
    }
    // Claim 1: wherever a (p, N) was measured both fused and unfused, the
    // fused path's modeled end-to-end time is no worse.
    bool compared = false;
    for (const auto& [key, fused_total] : fused_vtime) {
      const auto it = unfused_vtime.find(key);
      if (it == unfused_vtime.end()) continue;
      compared = true;
      if (fused_total > it->second) {
        return complain("fused vtime exceeds unfused at p=" +
                        std::to_string(key.procs));
      }
    }
    if (!compared) return complain("no fused/unfused pair present");
    // Claim 2: histogram-mode first-level bytes are flat in the record count
    // while the exact engine's grow with it. Checked wherever a (p, mode)
    // was measured at two scales. The thresholds leave headroom for the
    // small N-independent terms both engines carry (tree growth metadata,
    // categorical count matrices).
    bool flat_checked = false;
    for (const auto& [procs, by_mode] : level1_bytes) {
      const auto hist = by_mode.find("histogram");
      const auto exact = by_mode.find("exact");
      if (hist == by_mode.end() || exact == by_mode.end()) continue;
      if (hist->second.size() < 2 || exact->second.size() < 2) continue;
      const auto ratio = [](const std::map<std::int64_t, std::int64_t>& m) {
        const double lo = static_cast<double>(m.begin()->second);
        const double hi = static_cast<double>(m.rbegin()->second);
        return lo > 0.0 ? hi / lo : 0.0;
      };
      flat_checked = true;
      const double hist_ratio = ratio(hist->second);
      const double exact_ratio = ratio(exact->second);
      if (hist_ratio > 1.2) {
        return complain("histogram level-1 bytes not flat at p=" +
                        std::to_string(procs) + " (ratio " +
                        std::to_string(hist_ratio) + ")");
      }
      if (exact_ratio < 1.3) {
        return complain("exact level-1 bytes unexpectedly flat at p=" +
                        std::to_string(procs) + " (ratio " +
                        std::to_string(exact_ratio) + ")");
      }
    }
    if (!flat_checked) {
      return complain("no two-scale histogram/exact pair to check flatness");
    }
  } catch (const std::exception& e) {
    return complain(e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);

  const std::string out_path = args.get_string("out", "");
  const std::string validate_path = args.get_string("validate", "");

  if (!out_path.empty() || validate_path.empty()) {
    // Normal run (possibly followed by validation of what it wrote).
  } else {
    // Validate-only mode.
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    return validate(util::Json::parse(buffer.str())) ? 0 : 1;
  }

  const auto records =
      static_cast<std::uint64_t>(args.get_int("records", 16000));
  const std::vector<std::int64_t> procs =
      args.get_int_list("procs", {2, 4, 8, 16});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int depth = static_cast<int>(args.get_int("depth", 12));
  const int bins = static_cast<int>(args.get_int("bins", 64));
  const int top_k = static_cast<int>(args.get_int("top-k", 2));
  const auto model = mp::CostModel::cray_t3d();
  const data::QuestGenerator generator = bench::paper_generator(seed);
  // Holdout rid range disjoint from every training scale (rids [0, 2N)).
  const data::Dataset holdout = generator.generate(
      4 * records, std::max<std::size_t>(records / 4, 256));

  bench::CsvWriter csv(
      args, "level_comm.csv",
      "procs,mode,fused,records,level,active_nodes,active_records,"
      "collective_calls,max_bytes_sent_per_rank,vtime_s");

  struct Variant {
    const char* mode;
    bool fused;
    std::uint64_t scale;  // multiple of --records
  };
  // Unfused only makes sense for the exact engine (the quantized engines
  // always pack their histogram segments), and is measured at base scale
  // only; the fused variants run at N and 2N for the flatness comparison.
  const Variant variants[] = {
      {"exact", true, 1},     {"exact", false, 1},   {"exact", true, 2},
      {"histogram", true, 1}, {"histogram", true, 2},
      {"voting", true, 1},    {"voting", true, 2},
  };

  std::vector<RunRow> rows;
  // Exact-engine reference tree per record scale. Exact trees are
  // processor-count invariant, so the first one measured at a scale serves
  // as the oracle for every p.
  std::map<std::uint64_t, DecisionTree> exact_tree;
  std::map<std::uint64_t, double> exact_accuracy;
  for (const std::int64_t p : procs) {
    for (const Variant& variant : variants) {
      const std::uint64_t n = records * variant.scale;
      core::InductionControls controls = bench::paper_controls();
      controls.options.max_depth = depth;
      controls.options.fuse_collectives = variant.fused;
      controls.collect_level_stats = true;
      const std::string mode = variant.mode;
      if (mode == "histogram") {
        controls.options.split_mode = SplitMode::kHistogram;
      } else if (mode == "voting") {
        controls.options.split_mode = SplitMode::kVoting;
      }
      controls.options.hist_bins = bins;
      controls.options.top_k = top_k;
      const core::FitReport report = core::ScalParC::fit_generated(
          generator, n, static_cast<int>(p), controls, model);
      RunRow row;
      row.procs = static_cast<int>(p);
      row.mode = mode;
      row.fused = variant.fused;
      row.records = n;
      row.total_vtime_s = report.run.modeled_seconds;
      row.findsplit_vtime_s = report.stats.findsplit_seconds;
      row.presort_vtime_s = report.stats.presort_seconds;
      for (const mp::RankOutcome& rank : report.run.ranks) {
        row.max_bytes_sent_per_rank =
            std::max(row.max_bytes_sent_per_rank, rank.stats.bytes_sent);
      }
      row.levels = report.stats.per_level;
      row.holdout_accuracy = report.tree.accuracy(holdout);
      if (mode == "exact") {
        if (exact_tree.find(n) == exact_tree.end()) {
          exact_tree.emplace(n, report.tree);
          exact_accuracy[n] = row.holdout_accuracy;
        }
      } else {
        row.winner_agreement = winner_agreement(exact_tree.at(n), report.tree);
        row.accuracy_delta = exact_accuracy.at(n) - row.holdout_accuracy;
      }
      mp::MetricsSnapshot merged = report.run.metrics;
      core::absorb_induction_stats(merged, report.stats);
      row.details = Json::object();
      row.details["metrics"] = merged.to_json();
      rows.push_back(std::move(row));
    }
  }

  // ---------------- stdout tables ------------------------------------------
  std::printf("per-level communication (records=%llu, depth cap %d):\n",
              static_cast<unsigned long long>(records), depth);
  std::printf("%6s %10s %6s %8s %6s %7s %9s %11s %13s %11s\n", "procs",
              "mode", "fused", "records", "level", "nodes", "records",
              "coll calls", "max bytes/rk", "vtime(ms)");
  for (const RunRow& row : rows) {
    double prev_vtime = row.presort_vtime_s;
    for (const LevelStats& level : row.levels) {
      const double vtime_s = level.vtime_end - prev_vtime;
      prev_vtime = level.vtime_end;
      std::printf(
          "%6d %10s %6s %8llu %6d %7lld %9lld %11lld %13llu %11.3f\n",
          row.procs, row.mode.c_str(), row.fused ? "yes" : "no",
          static_cast<unsigned long long>(row.records), level.level,
          static_cast<long long>(level.active_nodes),
          static_cast<long long>(level.active_records),
          static_cast<long long>(level.collective_calls),
          static_cast<unsigned long long>(level.max_bytes_sent_per_rank),
          vtime_s * 1e3);
      csv.row("%d,%s,%d,%llu,%d,%lld,%lld,%lld,%llu,%.6f", row.procs,
              row.mode.c_str(), row.fused ? 1 : 0,
              static_cast<unsigned long long>(row.records), level.level,
              static_cast<long long>(level.active_nodes),
              static_cast<long long>(level.active_records),
              static_cast<long long>(level.collective_calls),
              static_cast<unsigned long long>(level.max_bytes_sent_per_rank),
              vtime_s);
    }
  }

  std::printf("\nfused vs unfused (exact engine), modeled end-to-end:\n");
  std::printf("%6s %14s %14s %9s\n", "procs", "fused(ms)", "unfused(ms)",
              "speedup");
  for (const std::int64_t p : procs) {
    double fused_total = 0.0, unfused_total = 0.0;
    for (const RunRow& row : rows) {
      if (row.procs != p || row.mode != "exact" || row.records != records) {
        continue;
      }
      (row.fused ? fused_total : unfused_total) = row.total_vtime_s;
    }
    std::printf("%6lld %14.3f %14.3f %8.2fx\n", static_cast<long long>(p),
                fused_total * 1e3, unfused_total * 1e3,
                unfused_total / fused_total);
  }

  std::printf(
      "\nsplit modes at N vs 2N (level-1 max bytes/rank; histogram stays "
      "flat):\n");
  std::printf("%6s %10s %14s %14s %8s %10s %9s\n", "procs", "mode", "bytes@N",
              "bytes@2N", "ratio", "agreement", "acc delta");
  for (const std::int64_t p : procs) {
    for (const char* mode : {"exact", "histogram", "voting"}) {
      std::uint64_t at_n = 0, at_2n = 0;
      double agreement = 1.0, delta = 0.0;
      for (const RunRow& row : rows) {
        if (row.procs != p || row.mode != mode || !row.fused) continue;
        const std::uint64_t bytes =
            row.levels.empty() ? 0
                               : row.levels.front().max_bytes_sent_per_rank;
        if (row.records == records) {
          at_n = bytes;
          agreement = row.winner_agreement;
          delta = row.accuracy_delta;
        } else if (row.records == 2 * records) {
          at_2n = bytes;
        }
      }
      std::printf(
          "%6lld %10s %14llu %14llu %8.2f %10.3f %9.4f\n",
          static_cast<long long>(p), mode,
          static_cast<unsigned long long>(at_n),
          static_cast<unsigned long long>(at_2n),
          at_n > 0 ? static_cast<double>(at_2n) / static_cast<double>(at_n)
                   : 0.0,
          agreement, delta);
    }
  }

  // ---------------- JSON document ------------------------------------------
  Json doc = Json::object();
  doc["bench"] = "level_comm";
  doc["records"] = records;
  doc["seed"] = seed;
  doc["depth"] = depth;
  doc["bins"] = bins;
  doc["top_k"] = top_k;
  doc["cost_model"] = "cray_t3d";
  Json procs_json = Json::array();
  for (const std::int64_t p : procs) procs_json.push_back(p);
  doc["procs"] = std::move(procs_json);
  Json runs = Json::array();
  for (const RunRow& row : rows) runs.push_back(to_json(row));
  doc["runs"] = std::move(runs);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", out_path.c_str());
  }
  if (!validate_path.empty()) {
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    if (!validate(util::Json::parse(buffer.str()))) return 1;
    std::printf("validation OK: %s\n", validate_path.c_str());
  }
  return 0;
}
