file(REMOVE_RECURSE
  "CMakeFiles/comm_model.dir/comm_model.cpp.o"
  "CMakeFiles/comm_model.dir/comm_model.cpp.o.d"
  "comm_model"
  "comm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
