// Collective operations for the in-process message-passing runtime.
//
// All collectives are SPMD: every rank of the communicator must call the
// same collectives in the same order. Algorithms follow the classic MPI
// implementations so that modeled costs have realistic shapes:
//   bcast / reduce      binomial tree          O(log p) rounds
//   allreduce           reduce + bcast         O(log p) rounds
//   exscan              distance doubling      O(log p) rounds
//   gather(v)           linear to root         O(p) messages at root
//   allgather(v)        gather + bcast
//   alltoallv           buffered pairwise      p-1 messages per rank
//
// Value types must be trivially copyable (WireType). Combine functors must
// be associative; all uses in this library are also commutative.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mp/comm.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::mp {

// ---------------------------------------------------------------------------
// Common combine functors.
// ---------------------------------------------------------------------------

struct SumOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

struct MinOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

struct MaxOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

// ---------------------------------------------------------------------------
// Broadcast (binomial tree rooted at `root`).
// ---------------------------------------------------------------------------

template <WireType T>
void bcast(Comm& comm, std::vector<T>& data, int root) {
  const int p = comm.size();
  if (root < 0 || root >= p) throw std::invalid_argument("bcast: bad root");
  Comm::OpScope scope(comm, CommOp::kBroadcast);
  const std::int64_t tag = comm.next_collective_tag();
  if (p == 1) return;
  const int vrank = (comm.rank() - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % p;
      data = comm.recv<T>(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & (mask - 1)) == 0 && (vrank | mask) != vrank && vrank + mask < p) {
      const int dst = (vrank + mask + root) % p;
      comm.send<T>(dst, tag, std::span<const T>(data));
    }
    mask >>= 1;
  }
}

template <WireType T>
T bcast_value(Comm& comm, T value, int root) {
  std::vector<T> data;
  if (comm.rank() == root) data.push_back(value);
  bcast(comm, data, root);
  return data.at(0);
}

// ---------------------------------------------------------------------------
// Reduce to root (binomial tree). Only the root's return value is defined.
// ---------------------------------------------------------------------------

template <WireType T, typename Combine>
std::vector<T> reduce_vec(Comm& comm, std::span<const T> local, Combine combine,
                          int root) {
  const int p = comm.size();
  if (root < 0 || root >= p) throw std::invalid_argument("reduce: bad root");
  Comm::OpScope scope(comm, CommOp::kReduce);
  const std::int64_t tag = comm.next_collective_tag();
  std::vector<T> acc(local.begin(), local.end());
  if (p == 1) return acc;
  const int vrank = (comm.rank() - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int vsrc = vrank | mask;
      if (vsrc < p) {
        const int src = (vsrc + root) % p;
        std::vector<T> incoming = comm.recv<T>(src, tag);
        if (incoming.size() != acc.size()) {
          throw std::logic_error("reduce_vec: mismatched lengths across ranks");
        }
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] = combine(acc[i], incoming[i]);
        }
      }
    } else {
      // The accumulator is dead after this send: move it into the mailbox so
      // the parent's recv reclaims the buffer without copying.
      const int dst = ((vrank & ~mask) + root) % p;
      comm.send<T>(dst, tag, std::move(acc));
      break;
    }
    mask <<= 1;
  }
  return acc;
}

template <WireType T, typename Combine>
T reduce_value(Comm& comm, const T& value, Combine combine, int root) {
  std::vector<T> acc =
      reduce_vec(comm, std::span<const T>(&value, 1), combine, root);
  // Non-roots surrendered their accumulator to the mailbox; their return
  // value is undefined by contract.
  return acc.empty() ? value : acc.at(0);
}

// ---------------------------------------------------------------------------
// Allreduce = reduce to rank 0 + broadcast.
// ---------------------------------------------------------------------------

template <WireType T, typename Combine>
std::vector<T> allreduce_vec(Comm& comm, std::span<const T> local,
                             Combine combine) {
  Comm::OpScope scope(comm, CommOp::kAllreduce);
  std::vector<T> acc = reduce_vec(comm, local, combine, /*root=*/0);
  bcast(comm, acc, /*root=*/0);
  return acc;
}

template <WireType T, typename Combine>
T allreduce_value(Comm& comm, const T& value, Combine combine) {
  std::vector<T> acc =
      allreduce_vec(comm, std::span<const T>(&value, 1), combine);
  return acc.at(0);
}

// ---------------------------------------------------------------------------
// Barrier: an allreduce of one byte. Costs O(log p) latency rounds, which is
// the realistic shape for a software barrier.
// ---------------------------------------------------------------------------

inline void barrier(Comm& comm) {
  Comm::OpScope scope(comm, CommOp::kBarrier);
  (void)allreduce_value<char>(comm, 0, MaxOp{});
}

// ---------------------------------------------------------------------------
// Exclusive scan (distance doubling / Hillis-Steele). Rank r returns
// combine(x_0, ..., x_{r-1}); rank 0 returns `identity`. Element-wise over
// equal-length vectors.
// ---------------------------------------------------------------------------

template <WireType T, typename Combine>
std::vector<T> exscan_vec(Comm& comm, std::span<const T> local,
                          Combine combine, const T& identity) {
  const int p = comm.size();
  const int r = comm.rank();
  Comm::OpScope scope(comm, CommOp::kScan);

  // `segment` covers ranks [max(0, r-d+1) .. r] after the step of stride d;
  // `exclusive` covers [max(0, r-d+1)-? .. r-1] growing leftwards.
  std::vector<T> segment(local.begin(), local.end());
  std::vector<T> exclusive(local.size(), identity);
  for (int d = 1; d < p; d <<= 1) {
    const std::int64_t tag = comm.next_collective_tag();
    if (r + d < p) comm.send<T>(r + d, tag, std::span<const T>(segment));
    if (r - d >= 0) {
      std::vector<T> incoming = comm.recv<T>(r - d, tag);
      if (incoming.size() != segment.size()) {
        throw std::logic_error("exscan_vec: mismatched lengths across ranks");
      }
      for (std::size_t i = 0; i < segment.size(); ++i) {
        exclusive[i] = combine(incoming[i], exclusive[i]);
        segment[i] = combine(incoming[i], segment[i]);
      }
    }
  }
  return exclusive;
}

template <WireType T, typename Combine>
T exscan_value(Comm& comm, const T& value, Combine combine, const T& identity) {
  std::vector<T> out =
      exscan_vec(comm, std::span<const T>(&value, 1), combine, identity);
  return out.at(0);
}

// ---------------------------------------------------------------------------
// Gather / gatherv (linear to root).
// ---------------------------------------------------------------------------

// Gathers one value from every rank; the root's result is indexed by rank,
// non-roots get an empty vector.
template <WireType T>
std::vector<T> gather_values(Comm& comm, const T& value, int root) {
  const int p = comm.size();
  if (root < 0 || root >= p) throw std::invalid_argument("gather: bad root");
  Comm::OpScope scope(comm, CommOp::kGather);
  const std::int64_t tag = comm.next_collective_tag();
  if (comm.rank() != root) {
    comm.send_value(root, tag, value);
    return {};
  }
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    if (src == root) {
      out.push_back(value);
    } else {
      out.push_back(comm.recv_value<T>(src, tag));
    }
  }
  return out;
}

// Gathers a variable-length chunk from every rank; the root's result is the
// per-source list of chunks, non-roots get an empty vector.
template <WireType T>
std::vector<std::vector<T>> gatherv(Comm& comm, std::span<const T> local,
                                    int root) {
  const int p = comm.size();
  if (root < 0 || root >= p) throw std::invalid_argument("gatherv: bad root");
  Comm::OpScope scope(comm, CommOp::kGather);
  const std::int64_t tag = comm.next_collective_tag();
  if (comm.rank() != root) {
    comm.send<T>(root, tag, local);
    return {};
  }
  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    if (src == root) {
      out[static_cast<std::size_t>(src)].assign(local.begin(), local.end());
    } else {
      out[static_cast<std::size_t>(src)] = comm.recv<T>(src, tag);
    }
  }
  return out;
}

// Concatenation allgather: every rank receives the concatenation (in rank
// order) of all local chunks. This is the pattern whose O(N) per-processor
// cost makes the parallel SPRINT baseline unscalable.
template <WireType T>
std::vector<T> allgatherv_concat(Comm& comm, std::span<const T> local) {
  Comm::OpScope scope(comm, CommOp::kAllgather);
  std::vector<std::vector<T>> chunks = gatherv(comm, local, /*root=*/0);
  std::vector<T> flat;
  if (comm.is_root()) {
    std::size_t total = 0;
    for (const auto& c : chunks) total += c.size();
    flat.reserve(total);
    for (const auto& c : chunks) flat.insert(flat.end(), c.begin(), c.end());
  }
  bcast(comm, flat, /*root=*/0);
  util::ScopedAllocation buffers(comm.meter(), util::MemCategory::kCommBuffers,
                                 flat.size() * sizeof(T));
  return flat;
}

// ---------------------------------------------------------------------------
// All-to-all personalized exchange of variable-length chunks: sendbufs[d] is
// delivered to rank d; the result's element [s] is the chunk received from
// rank s. This is the core primitive of the parallel hashing paradigm.
// ---------------------------------------------------------------------------

template <WireType T>
std::vector<std::vector<T>> alltoallv(Comm& comm,
                                      const std::vector<std::vector<T>>& sendbufs) {
  const int p = comm.size();
  if (static_cast<int>(sendbufs.size()) != p) {
    throw std::invalid_argument("alltoallv: need one send buffer per rank");
  }
  Comm::OpScope scope(comm, CommOp::kAlltoall);
  const std::int64_t tag = comm.next_collective_tag();

  // Account staged send + receive buffers against this rank's memory: the
  // paper's Figure 3(b) attributes the large-p deviation from perfect
  // halving to exactly these buffers.
  std::size_t staged = 0;
  for (const auto& buf : sendbufs) staged += buf.size() * sizeof(T);
  util::ScopedAllocation send_side(comm.meter(), util::MemCategory::kCommBuffers,
                                   staged);

  const int r = comm.rank();
  for (int offset = 1; offset < p; ++offset) {
    const int dst = (r + offset) % p;
    comm.send<T>(dst, tag, std::span<const T>(sendbufs[static_cast<std::size_t>(dst)]));
  }
  std::vector<std::vector<T>> recvbufs(static_cast<std::size_t>(p));
  recvbufs[static_cast<std::size_t>(r)] = sendbufs[static_cast<std::size_t>(r)];
  std::size_t received = 0;
  for (int offset = 1; offset < p; ++offset) {
    const int src = (r - offset + p) % p;
    recvbufs[static_cast<std::size_t>(src)] = comm.recv<T>(src, tag);
    received += recvbufs[static_cast<std::size_t>(src)].size() * sizeof(T);
  }
  util::ScopedAllocation recv_side(comm.meter(), util::MemCategory::kCommBuffers,
                                   received);
  return recvbufs;
}

}  // namespace scalparc::mp
