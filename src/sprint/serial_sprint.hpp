// Serial SPRINT-style classifier (§2): attribute lists sorted once, a
// rid -> child hash table per level, breadth-first induction.
//
// This is an *independent* implementation of the sequential algorithm
// ScalParC parallelizes — it shares the gini/split-selection primitives but
// none of the distributed machinery. It uses the same candidate enumeration
// and tie-breaking as the parallel code, so for any processor count
// ScalParC must produce a structurally identical tree; the test suite uses
// it as the correctness oracle.
#pragma once

#include "core/induction.hpp"
#include "core/options.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"

namespace scalparc::sprint {

// Induces a decision tree serially. Throws std::invalid_argument on an
// empty training set.
core::DecisionTree fit_serial_sprint(const data::Dataset& training,
                                     const core::InductionOptions& options = {});

}  // namespace scalparc::sprint
