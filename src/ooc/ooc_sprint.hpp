// Out-of-core serial SPRINT (§2's memory-limited regime).
//
// The serial classifier ScalParC is measured against keeps its attribute
// lists on disk and, when the splitting phase's rid -> child hash table does
// not fit in memory, "has to divide the splitting phase into several stages
// such that the hash table for each of the phases fits in the memory. This
// requires multiple passes over each of the attribute lists causing
// expensive disk I/O." This module reproduces that classifier:
//
//   * attribute lists are spill files, streamed one buffer at a time;
//   * the one-time presort of continuous attributes is an external merge
//     sort bounded by `sort_memory_budget_records`;
//   * each level's splitting phase partitions the record-id space into the
//     smallest number of ranges whose hash tables fit in
//     `hash_memory_budget_bytes`; every extra range costs one more full read
//     of every attribute file (IoStats::extra_passes);
//   * continuous child lists are written as per-pass sorted runs and merged
//     afterwards, preserving the sort order without ever re-sorting.
//
// The induced tree is identical to sprint::fit_serial_sprint (and therefore
// to ScalParC at any processor count); the difference is purely where the
// data lives and how much I/O a given memory budget costs — which is what
// bench/ooc_passes measures.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/options.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "ooc/spill_file.hpp"

namespace scalparc::ooc {

struct OocOptions {
  core::InductionOptions induction;
  // Bytes the splitting-phase hash table may occupy. Covers the full rid
  // space at 4 bytes per record; smaller budgets force multiple passes.
  std::size_t hash_memory_budget_bytes = 1 << 20;
  // Records held in memory during external-sort run generation.
  std::size_t sort_memory_budget_records = 1 << 16;
  // Streaming buffer granularity (records) for readers/writers.
  std::size_t io_buffer_records = 4096;
};

struct OocReport {
  core::DecisionTree tree;
  IoStats io;
  // Hash-table passes per level, summed and maximal.
  std::uint64_t total_passes = 0;
  std::uint64_t max_passes_per_level = 0;
  int levels = 0;
};

// Trains from an in-memory dataset by first spilling its attribute lists to
// disk, then never touching the dataset again. Throws std::invalid_argument
// on an empty training set or a hash budget smaller than one table entry.
OocReport fit_ooc_sprint(const data::Dataset& training,
                         const OocOptions& options = {});

}  // namespace scalparc::ooc
