file(REMOVE_RECURSE
  "libscalparc_sprint.a"
)
