#include "core/splitter.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace scalparc::core {

void assign_children_continuous(std::span<const data::ContinuousEntry> segment,
                                double threshold, std::span<std::int32_t> out) {
  if (segment.size() != out.size()) {
    throw std::invalid_argument("assign_children_continuous: size mismatch");
  }
  for (std::size_t i = 0; i < segment.size(); ++i) {
    out[i] = segment[i].value < threshold ? 0 : 1;
  }
}

void assign_children_continuous(std::span<const double> values,
                                double threshold, std::span<std::int32_t> out) {
  if (values.size() != out.size()) {
    throw std::invalid_argument("assign_children_continuous: size mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] < threshold ? 0 : 1;
  }
}

void assign_children_categorical(std::span<const data::CategoricalEntry> segment,
                                 std::span<const std::int32_t> value_to_child,
                                 std::span<std::int32_t> out) {
  if (segment.size() != out.size()) {
    throw std::invalid_argument("assign_children_categorical: size mismatch");
  }
  for (std::size_t i = 0; i < segment.size(); ++i) {
    const std::int32_t v = segment[i].value;
    if (v < 0 || v >= static_cast<std::int32_t>(value_to_child.size()) ||
        value_to_child[static_cast<std::size_t>(v)] < 0) {
      throw std::logic_error(
          "assign_children_categorical: training value missing from mapping");
    }
    out[i] = value_to_child[static_cast<std::size_t>(v)];
  }
}

void assign_children_categorical(std::span<const std::int32_t> values,
                                 std::span<const std::int32_t> value_to_child,
                                 std::span<std::int32_t> out) {
  if (values.size() != out.size()) {
    throw std::invalid_argument("assign_children_categorical: size mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::int32_t v = values[i];
    if (v < 0 || v >= static_cast<std::int32_t>(value_to_child.size()) ||
        value_to_child[static_cast<std::size_t>(v)] < 0) {
      throw std::logic_error(
          "assign_children_categorical: training value missing from mapping");
    }
    out[i] = value_to_child[static_cast<std::size_t>(v)];
  }
}

std::vector<std::int32_t> value_to_child_multiway(const CountMatrix& global) {
  std::vector<std::int32_t> mapping(static_cast<std::size_t>(global.rows()), -1);
  std::int32_t next = 0;
  for (int v = 0; v < global.rows(); ++v) {
    if (global.row_total(v) > 0) mapping[static_cast<std::size_t>(v)] = next++;
  }
  return mapping;
}

std::vector<std::int32_t> value_to_child_subset(const CountMatrix& global,
                                                std::uint64_t subset) {
  std::vector<std::int32_t> mapping(static_cast<std::size_t>(global.rows()), -1);
  for (int v = 0; v < global.rows(); ++v) {
    if (global.row_total(v) == 0) continue;
    mapping[static_cast<std::size_t>(v)] = (subset >> v) & 1u ? 0 : 1;
  }
  return mapping;
}

int num_children_of(std::span<const std::int32_t> value_to_child) {
  std::int32_t max_slot = -1;
  for (const std::int32_t slot : value_to_child) {
    max_slot = std::max(max_slot, slot);
  }
  return static_cast<int>(max_slot) + 1;
}

}  // namespace scalparc::core
