#include "mp/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "mp/fault.hpp"
#include "mp/runtime.hpp"
#include "util/crc32.hpp"

namespace scalparc::mp {

namespace {

// How long a receiver waits between deadlock-detector probes. Small enough
// that an injected deadlock resolves promptly, large enough that the probe
// never shows up in profiles of healthy runs.
constexpr std::chrono::milliseconds kRecvSlice{25};

// splitmix64, for deterministic retransmit-backoff jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Backoff with +-25% deterministic jitter so retransmit timers of different
// ranks/tags do not fire in lockstep, yet a fixed run replays identically.
double jittered_ms(double backoff_ms, int rank, std::int64_t tag, int attempt) {
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(rank) << 48 ^
            static_cast<std::uint64_t>(tag) << 8 ^
            static_cast<std::uint64_t>(attempt));
  const double unit = static_cast<double>(h % 1024) / 1024.0;  // [0, 1)
  return backoff_ms * (0.75 + 0.5 * unit);
}

std::chrono::steady_clock::duration duration_from_ms(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Comm::Comm(Hub& hub, int rank, const CostModel& model,
           util::MemoryMeter* meter)
    : hub_(hub), rank_(rank), model_(model), meter_(meter) {
  if (rank < 0 || rank >= hub.size()) {
    throw std::invalid_argument("Comm: rank out of range");
  }
  const HealthOptions& health = hub.options().health;
  health_monitoring_ = health.monitoring();
  detect_stragglers_ = health.detect_stragglers;
  adaptive_timeouts_ = health.adaptive_timeouts;
  if (const FaultPlan* plan = hub.options().fault_plan) {
    slow_factor_ = plan->slow_factor_for(rank);
  }
}

void Comm::heartbeat() {
  if (!health_monitoring_) return;
  hub_.health().heartbeat(rank_);
  ++heartbeats_sent_;
}

void Comm::settle_realized_work() {
  // Sleep in bounded chunks, heartbeating between them: a rank throttled 8x
  // spends most of its wall time here and must stay visibly alive.
  constexpr double kChunkS = 0.05;
  while (realize_debt_s_ > 0.0) {
    const double chunk = std::min(realize_debt_s_, kChunkS);
    std::this_thread::sleep_for(std::chrono::duration<double>(chunk));
    realize_debt_s_ -= chunk;
    heartbeat();
  }
  realize_debt_s_ = 0.0;
}

int Comm::size() const { return hub_.size(); }

int Comm::prior_world() const { return hub_.options().prior_world; }

void Comm::admit_joiner(int rank) { hub_.admit_joiner(rank); }

std::int64_t Comm::begin_op(const char* what) {
  const std::int64_t op = ++comm_ops_;
  heartbeat();
  if (slow_factor_ > 1.0) {
    // Per-op wall pause so a slow fault is visible even in virtual-time-only
    // runs: ~50 us of implied per-op CPU cost, scaled by (factor - 1).
    std::this_thread::sleep_for(
        std::chrono::duration<double>((slow_factor_ - 1.0) * 50e-6));
  }
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr) {
    const double delay = plan->delay_ms_at_op(rank_, op);
    if (delay > 0.0) {
      plan->count_delay();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
    if (plan->kills_at_op(rank_, op)) {
      plan->count_kill();
      std::ostringstream what_out;
      what_out << "injected fault: rank " << rank_ << " killed at " << what
               << " (op " << op << ")";
      throw InjectedFault(what_out.str());
    }
  }
  return op;
}

void Comm::fault_level_boundary(int level) {
  publish_watermark(level);
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr && plan->kills_at_level(rank_, level)) {
    plan->count_kill();
    std::ostringstream what_out;
    what_out << "injected fault: rank " << rank_ << " killed at level "
             << level << " boundary";
    throw InjectedFault(what_out.str());
  }
}

void Comm::publish_watermark(int level) {
  if (!health_monitoring_) return;
  hub_.health().advance_watermark(rank_, level);
}

void Comm::straggler_probe(int src, std::int64_t tag) {
  const HealthOptions& health = hub_.options().health;
  const HealthRegistry::Snapshot snap = hub_.health().snapshot();
  const int p = size();
  // Suspect: the busiest unfinished peer. In a level-synchronous program the
  // straggler is the rank still burning CPU while everyone else idles at a
  // barrier, so while this rank is blocked, the peer with the largest
  // cumulative busy time is the one pacing the run.
  int suspect = -1;
  double suspect_busy = 0.0;
  for (int r = 0; r < p; ++r) {
    if (r == rank_ || snap.finished[static_cast<std::size_t>(r)]) continue;
    const double busy = snap.busy_seconds[static_cast<std::size_t>(r)];
    if (suspect < 0 || busy > suspect_busy) {
      suspect = r;
      suspect_busy = busy;
    }
  }
  if (suspect < 0) {
    straggler_suspect_ = -1;
    return;
  }

  // Watermark check. Barriers keep every rank within about one phase of the
  // minimum, so equality is expected — the condition is a guard against
  // suspecting a rank that has *pulled ahead* of the pack (it cannot be the
  // one pacing the run). A rank whose heartbeats stop entirely is not a
  // straggler either: that is the stuck/dead territory of the deadlock
  // detector and the fixed timeout.
  std::uint64_t min_wm = 0, max_wm = 0;
  bool first_wm = true;
  for (int r = 0; r < p; ++r) {
    if (snap.finished[static_cast<std::size_t>(r)]) continue;
    const std::uint64_t wm = snap.watermarks[static_cast<std::size_t>(r)];
    min_wm = first_wm ? wm : std::min(min_wm, wm);
    max_wm = first_wm ? wm : std::max(max_wm, wm);
    first_wm = false;
  }
  const bool at_the_back =
      snap.watermarks[static_cast<std::size_t>(suspect)] <= min_wm + 1;
  double phi = 0.0;
  const bool alive = hub_.health().alive(suspect, &phi);
  suspicion_hist_.observe(static_cast<std::uint64_t>(phi * 100.0));
  watermark_lag_hist_.observe(max_wm - min_wm);

  // Busy-time ratio: suspect vs the median of everyone else (cumulative over
  // the run — a per-run registry, so a rebalanced retry starts fresh). The
  // floor keeps an early, nearly-idle median from inflating the ratio.
  std::vector<double> others;
  others.reserve(static_cast<std::size_t>(p) - 1);
  for (int r = 0; r < p; ++r) {
    if (r == suspect) continue;
    others.push_back(snap.busy_seconds[static_cast<std::size_t>(r)]);
  }
  std::nth_element(others.begin(), others.begin() + others.size() / 2,
                   others.end());
  const double median = others[others.size() / 2];
  const double floor_s = std::max(0.02 * snap.elapsed_s, 1e-3);
  const double ratio = suspect_busy / std::max(median, floor_s);

  // All evidence conditions must hold continuously for sustain_s:
  //   - the suspect is alive (heartbeats flowing) and at the back of the pack
  //   - this rank has been starved (cumulatively blocked) long enough
  //   - the suspect has done enough absolute work for the ratio to mean
  //     anything
  //   - the busy-time ratio clears the configured slowdown threshold
  const bool starved =
      snap.elapsed_s - snap.busy_seconds[static_cast<std::size_t>(rank_)] >=
      health.min_blocked_s;
  const bool busy_enough = suspect_busy >= health.min_blocked_s;
  const bool hold = alive && at_the_back && starved && busy_enough &&
                    ratio >= health.slow_ratio;
  const auto now = std::chrono::steady_clock::now();
  if (!hold) {
    straggler_suspect_ = -1;
    return;
  }
  if (straggler_suspect_ != suspect) {
    straggler_suspect_ = suspect;
    straggler_since_ = now;
    return;
  }
  if (std::chrono::duration<double>(now - straggler_since_).count() <
      health.sustain_s) {
    return;
  }
  const double slowdown = std::clamp(ratio, 2.0, 16.0);
  hub_.health().note_straggler(suspect, slowdown);
  std::ostringstream what_out;
  what_out << "straggler detected: rank " << suspect
           << " is alive (phi " << phi << ") and progressing (watermark "
           << snap.watermarks[static_cast<std::size_t>(suspect)] << ", min "
           << min_wm << ") but pacing the run: busy " << suspect_busy
           << "s vs median peer " << median << "s (" << ratio
           << "x) over " << snap.elapsed_s << "s; observed from rank "
           << rank_ << " blocked in recv(src=" << src << ", tag=" << tag
           << ")";
  hub_.poison_all();
  throw StragglerDetected(what_out.str());
}

void Comm::send_payload(int dst, std::int64_t tag, Payload payload) {
  if (dst < 0 || dst >= size()) {
    throw std::invalid_argument("Comm::send_payload: destination out of range");
  }
  const std::int64_t op = begin_op("send");
  // Sender pays per-message CPU overhead; the message lands at the receiver
  // no earlier than now + wire time.
  vtime_ += model_.send_overhead_s;
  Message message;
  message.tag = tag;
  message.arrival_vtime = vtime_ + model_.wire_seconds(payload.size());
  message.payload = std::move(payload);
  // Frame checksum first, wire faults second: a corrupted payload must be
  // *detected* at the receiver, never silently mis-parsed.
  message.crc = util::crc32(message.payload.bytes());
  stats_.record_send(current_op_, message.payload.size());
  message_bytes_hist_.observe(message.payload.size());
  Channel& channel = hub_.channel(rank_, dst);
  const ReliabilityOptions& reliability = hub_.options().reliability;
  if (reliability.enabled) {
    // Sequence and retain a clean copy *before* wire faults touch the
    // message: whatever the wire does, the receiver can always be given
    // back exactly what was sent.
    message.seq = channel.assign_seq();
    channel.record_inflight(message);
  }
  const FaultPlan* plan = hub_.options().fault_plan;
  bool duplicate = false;
  if (plan != nullptr) {
    if (plan->drops_at_op(rank_, op)) {
      plan->count_drop();
      return;  // the wire ate it
    }
    if (plan->corrupts_at_op(rank_, op)) {
      plan->corrupt_payload(message.payload.mutable_bytes(), rank_, op);
    }
    if (plan->duplicates_at_op(rank_, op)) {
      plan->count_duplicate();
      duplicate = true;
    }
  }
  if (duplicate) {
    Message copy;
    copy.tag = message.tag;
    copy.seq = message.seq;
    copy.arrival_vtime = message.arrival_vtime;
    copy.crc = message.crc;
    copy.payload = Payload::copy_of(message.payload.bytes());
    channel.push(std::move(copy));
  }
  channel.push(std::move(message));
}

Payload Comm::recv_payload(int src, std::int64_t tag) {
  if (src < 0 || src >= size()) {
    throw std::invalid_argument("Comm::recv_payload: source out of range");
  }
  begin_op("recv");
  Channel& channel = hub_.channel(src, rank_);
  const RunOptions& options = hub_.options();
  const ReliabilityOptions& reliability = options.reliability;
  using clock = std::chrono::steady_clock;

  // Lazily initialized slow-path state, shared across protocol retries: the
  // overall timeout spans the whole logical receive, not one wire frame.
  bool waiting = false;
  bool bounded = false;
  clock::time_point overall_deadline = clock::time_point::max();
  clock::time_point next_retransmit = clock::time_point::max();
  // Adaptive per-channel deadline, derived from the observed inter-arrival
  // distribution once the channel's estimator is primed. On expiry it either
  // escalates (sender heartbeat-silent too: RecvTimeout) or stretches
  // (sender alive: double, capped at the fixed ceiling) — so with a live
  // sender this can never fail earlier than the fixed timeout alone.
  clock::time_point adaptive_deadline = clock::time_point::max();
  double adaptive_window_s = 0.0;
  double backoff_ms = reliability.backoff_ms;
  // Heal attempts charged against reliability.max_retransmits: nacks raised
  // plus timer-driven retransmit requests that actually re-queued a copy.
  int heal_attempts = 0;
  int heals_performed = 0;
  struct Unmark {
    Hub* hub = nullptr;
    int rank = 0;
    ~Unmark() {
      if (hub != nullptr) hub->mark_unblocked(rank);
    }
  } unmark;

  Message message;
  for (;;) {
    bool got = channel.try_pop(tag, message);
    if (!got) {
      if (!waiting) {
        waiting = true;
        const clock::time_point start = clock::now();
        bounded = options.recv_timeout_s > 0.0;
        if (bounded) {
          overall_deadline =
              start + std::chrono::duration_cast<clock::duration>(
                          std::chrono::duration<double>(options.recv_timeout_s));
        }
        if (reliability.enabled) {
          next_retransmit =
              start + duration_from_ms(
                          jittered_ms(backoff_ms, rank_, tag, heal_attempts));
        }
        if (adaptive_timeouts_ && channel.arrival_primed()) {
          adaptive_window_s = std::max(
              channel.adaptive_timeout_s(options.health.phi_threshold),
              options.health.timeout_floor_s);
          if (bounded) {
            adaptive_window_s =
                std::min(adaptive_window_s, options.recv_timeout_s);
          }
          adaptive_deadline =
              start + duration_from_ms(adaptive_window_s * 1000.0);
          adaptive_timeout_max_s_ =
              std::max(adaptive_timeout_max_s_, adaptive_window_s);
        }
        hub_.mark_blocked(rank_, src, tag);
        unmark.hub = &hub_;
        unmark.rank = rank_;
      }
      // Block in bounded slices; after each expired slice fire the
      // retransmit timer if due, then consult the deadlock detector and the
      // overall per-receive timeout.
      for (;;) {
        clock::time_point slice = clock::now() + kRecvSlice;
        if (slice > overall_deadline) slice = overall_deadline;
        if (slice > next_retransmit) slice = next_retransmit;
        if (slice > adaptive_deadline) slice = adaptive_deadline;
        if (channel.try_pop_until(tag, message, slice) ==
            Channel::PopStatus::kOk) {
          got = true;
          break;
        }
        const clock::time_point now = clock::now();
        // Every expired slice stamps this rank's own heartbeat lane (a
        // blocked waiter is alive) and, when straggler detection is on,
        // re-evaluates the gray-failure evidence.
        heartbeat();
        if (detect_stragglers_) straggler_probe(src, tag);
        if (reliability.enabled && now >= next_retransmit) {
          ++backoff_waits_;
          if (heal_attempts < reliability.max_retransmits) {
            // The awaited frame is overdue: if the sender side still holds a
            // clean unacknowledged copy for this tag, re-queue it (the frame
            // was dropped); if not, the sender simply has not sent yet.
            if (channel.request_retransmit(tag)) {
              ++heal_attempts;
              ++heals_performed;
            }
            backoff_ms = std::min(backoff_ms * 2.0, reliability.backoff_cap_ms);
            next_retransmit =
                now + duration_from_ms(
                          jittered_ms(backoff_ms, rank_, tag, heal_attempts));
          } else {
            // Budget spent: hand authority back to the deadlock detector
            // (its probe otherwise assumes this receiver will keep healing).
            hub_.mark_heal_exhausted(rank_);
            next_retransmit = clock::time_point::max();
          }
        }
        if (adaptive_timeouts_ && now >= adaptive_deadline) {
          double src_phi = 0.0;
          if (!hub_.health().alive(src, &src_phi)) {
            std::ostringstream what_out;
            what_out << "adaptive recv timeout: rank " << rank_ << " waited "
                     << adaptive_window_s << "s (phi threshold "
                     << options.health.phi_threshold << ") for recv(src="
                     << src << ", tag=" << tag << ") and rank " << src
                     << "'s heartbeat lane is silent too (phi " << src_phi
                     << ")";
            hub_.poison_all();
            throw RecvTimeout(what_out.str());
          }
          // Channel overdue but the sender is demonstrably alive: stretch.
          adaptive_window_s *= 2.0;
          if (bounded) {
            adaptive_window_s =
                std::min(adaptive_window_s, options.recv_timeout_s);
          }
          adaptive_deadline = now + duration_from_ms(adaptive_window_s * 1e3);
          adaptive_timeout_max_s_ =
              std::max(adaptive_timeout_max_s_, adaptive_window_s);
        }
        if (options.detect_deadlock) {
          ++deadlock_probes_;
          const std::string diag = hub_.deadlock_diagnostic();
          if (!diag.empty()) {
            // Last poison-aware look: if the run was already poisoned (a
            // peer died between our probe and its registration) unwind as a
            // secondary RankAborted instead of a phantom primary failure.
            if (channel.try_pop(tag, message)) {
              got = true;
              break;
            }
            hub_.poison_all();
            throw DeadlockDetected(diag);
          }
        }
        if (bounded && clock::now() >= overall_deadline) {
          std::ostringstream what_out;
          what_out << "recv timeout: rank " << rank_ << " waited "
                   << options.recv_timeout_s << "s for recv(src=" << src
                   << ", tag=" << tag << ")";
          hub_.poison_all();
          throw RecvTimeout(what_out.str());
        }
      }
    }

    // Protocol checks. Dedupe strictly before CRC: a duplicate of an
    // already-accepted frame is discarded even if the wire mangled it, and a
    // seq must only be marked accepted once its frame passes the checksum
    // (a nacked frame's retransmission carries the same seq).
    if (reliability.enabled && message.seq != 0 &&
        channel.discard_if_duplicate(message.seq)) {
      continue;
    }
    if (message.crc != util::crc32(message.payload.bytes())) {
      if (reliability.enabled && message.seq != 0 &&
          heal_attempts < reliability.max_retransmits &&
          channel.nack_retransmit(message.seq)) {
        ++heal_attempts;
        ++heals_performed;
        continue;
      }
      std::ostringstream what_out;
      what_out << "corrupt message: rank " << rank_ << " recv(src=" << src
               << ", tag=" << tag << ", bytes=" << message.payload.size()
               << ") failed its CRC32 frame checksum";
      throw CorruptMessage(what_out.str());
    }
    // Leave the liveness registry *before* acknowledging: the ack drops the
    // sender's retransmittable copy, so a deadlock probe sampling between the
    // ack and the guard's unmark would see this rank blocked with nothing
    // deliverable — a phantom deadlock under heavy CPU oversubscription.
    if (unmark.hub != nullptr) {
      hub_.mark_unblocked(rank_);
      unmark.hub = nullptr;
    }
    if (reliability.enabled && message.seq != 0) {
      channel.acknowledge(message.seq);
    }
    if (message.arrival_vtime > vtime_) vtime_ = message.arrival_vtime;
    // Each heal cost a modeled control round trip on top of the original
    // arrival time (request or nack out, clean copy back).
    if (heals_performed > 0) {
      vtime_ += static_cast<double>(heals_performed) *
                (2.0 * model_.latency_s + model_.send_overhead_s);
    }
    heals_ += static_cast<std::uint64_t>(heals_performed);
    stats_.record_receive(message.payload.size());
    return std::move(message.payload);
  }
}

}  // namespace scalparc::mp
