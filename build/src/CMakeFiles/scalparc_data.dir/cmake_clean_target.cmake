file(REMOVE_RECURSE
  "libscalparc_data.a"
)
