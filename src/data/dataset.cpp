#include "data/dataset.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace scalparc::data {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  schema_.validate();
  slot_of_attribute_.reserve(static_cast<std::size_t>(schema_.num_attributes()));
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    if (schema_.attribute(a).kind == AttributeKind::kContinuous) {
      slot_of_attribute_.push_back(static_cast<int>(continuous_columns_.size()));
      continuous_columns_.emplace_back();
    } else {
      slot_of_attribute_.push_back(static_cast<int>(categorical_columns_.size()));
      categorical_columns_.emplace_back();
    }
  }
}

int Dataset::column_slot(int attribute, AttributeKind expected) const {
  if (attribute < 0 || attribute >= schema_.num_attributes()) {
    throw std::out_of_range("Dataset: attribute index out of range");
  }
  if (schema_.attribute(attribute).kind != expected) {
    throw std::invalid_argument("Dataset: attribute kind mismatch");
  }
  return slot_of_attribute_[static_cast<std::size_t>(attribute)];
}

void Dataset::append(std::span<const double> continuous,
                     std::span<const std::int32_t> categorical,
                     std::int32_t label) {
  if (static_cast<int>(continuous.size()) != schema_.num_continuous() ||
      static_cast<int>(categorical.size()) != schema_.num_categorical()) {
    throw std::invalid_argument("Dataset::append: value count mismatch");
  }
  std::size_t c = 0;
  std::size_t g = 0;
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    const int slot = slot_of_attribute_[static_cast<std::size_t>(a)];
    if (schema_.attribute(a).kind == AttributeKind::kContinuous) {
      continuous_columns_[static_cast<std::size_t>(slot)].push_back(continuous[c++]);
    } else {
      categorical_columns_[static_cast<std::size_t>(slot)].push_back(categorical[g++]);
    }
  }
  labels_.push_back(label);
}

double Dataset::continuous_value(int attribute, std::size_t row) const {
  const int slot = column_slot(attribute, AttributeKind::kContinuous);
  return continuous_columns_[static_cast<std::size_t>(slot)].at(row);
}

std::int32_t Dataset::categorical_value(int attribute, std::size_t row) const {
  const int slot = column_slot(attribute, AttributeKind::kCategorical);
  return categorical_columns_[static_cast<std::size_t>(slot)].at(row);
}

std::span<const double> Dataset::continuous_column(int attribute) const {
  const int slot = column_slot(attribute, AttributeKind::kContinuous);
  return continuous_columns_[static_cast<std::size_t>(slot)];
}

std::span<const std::int32_t> Dataset::categorical_column(int attribute) const {
  const int slot = column_slot(attribute, AttributeKind::kCategorical);
  return categorical_columns_[static_cast<std::size_t>(slot)];
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > num_records()) {
    throw std::out_of_range("Dataset::slice: bad range");
  }
  Dataset out(schema_);
  std::vector<double> cont(static_cast<std::size_t>(schema_.num_continuous()));
  std::vector<std::int32_t> cat(static_cast<std::size_t>(schema_.num_categorical()));
  for (std::size_t row = begin; row < end; ++row) {
    std::size_t c = 0;
    std::size_t g = 0;
    for (int a = 0; a < schema_.num_attributes(); ++a) {
      const int slot = slot_of_attribute_[static_cast<std::size_t>(a)];
      if (schema_.attribute(a).kind == AttributeKind::kContinuous) {
        cont[c++] = continuous_columns_[static_cast<std::size_t>(slot)][row];
      } else {
        cat[g++] = categorical_columns_[static_cast<std::size_t>(slot)][row];
      }
    }
    out.append(cont, cat, labels_[row]);
  }
  return out;
}

std::size_t Dataset::payload_bytes() const {
  std::size_t bytes = labels_.size() * sizeof(std::int32_t);
  for (const auto& col : continuous_columns_) bytes += col.size() * sizeof(double);
  for (const auto& col : categorical_columns_) {
    bytes += col.size() * sizeof(std::int32_t);
  }
  return bytes;
}

void Dataset::validate() const {
  for (std::size_t row = 0; row < labels_.size(); ++row) {
    if (labels_[row] < 0 || labels_[row] >= schema_.num_classes()) {
      throw std::out_of_range("Dataset: label out of range");
    }
  }
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    const AttributeInfo& info = schema_.attribute(a);
    if (info.kind == AttributeKind::kCategorical) {
      for (std::int32_t code : categorical_column(a)) {
        if (code < 0 || code >= info.cardinality) {
          throw std::out_of_range("Dataset: categorical code out of range for '" +
                                  info.name + "'");
        }
      }
    } else {
      // NaN breaks the strict weak order of the presort; infinities break
      // split-threshold arithmetic. Both are input errors.
      for (const double value : continuous_column(a)) {
        if (!std::isfinite(value)) {
          throw std::invalid_argument(
              "Dataset: non-finite continuous value in '" + info.name + "'");
        }
      }
    }
  }
}

}  // namespace scalparc::data
