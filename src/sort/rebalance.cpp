#include "sort/rebalance.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace scalparc::sort {

int owner_of_global_index(std::size_t global_index,
                          const std::vector<std::size_t>& target_offsets) {
  // target_offsets is non-decreasing with p+1 entries; the owner is the last
  // rank whose start offset is <= global_index and whose chunk is non-empty.
  const auto it = std::upper_bound(target_offsets.begin(), target_offsets.end(),
                                   global_index);
  if (it == target_offsets.begin() || it == target_offsets.end()) {
    // global_index >= total: caller bug.
    if (global_index >= target_offsets.back()) {
      throw std::out_of_range("owner_of_global_index: index beyond total");
    }
  }
  return static_cast<int>(it - target_offsets.begin()) - 1;
}

}  // namespace scalparc::sort
