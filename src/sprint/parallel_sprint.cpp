#include "sprint/parallel_sprint.hpp"

#include <cstdint>

namespace scalparc::sprint {

core::FitReport fit_parallel_sprint(const data::Dataset& training, int nranks,
                                    core::InductionControls controls,
                                    const mp::CostModel& model) {
  controls.strategy = core::SplittingStrategy::kReplicatedHash;
  return core::ScalParC::fit(training, nranks, controls, model);
}

core::FitReport fit_parallel_sprint_generated(
    const data::QuestGenerator& generator, std::uint64_t total_records,
    int nranks, core::InductionControls controls, const mp::CostModel& model) {
  controls.strategy = core::SplittingStrategy::kReplicatedHash;
  return core::ScalParC::fit_generated(generator, total_records, nranks,
                                       controls, model);
}

}  // namespace scalparc::sprint
