// Inference-path bench: the compiled flat-tree batch evaluator against the
// recursive TreeNode walk it replaces, on a tree trained from the paper's
// Quest workload.
//
// Everything here is wall-clock (Stopwatch), not modeled vtime: the point of
// the flat SoA layout and the branchless depth-step advance is what the
// memory system does per record, which the cost model abstracts away.
//
// For each rank count p and batch size b, every rank scores its contiguous
// shard of the evaluation set: the recursive baseline walks row by row, the
// compiled engine calls predict_batch per b-row slice. Before any timing the
// bench runs the differential oracle — compiled predictions must be
// row-for-row identical to DecisionTree::predict — and refuses to emit
// numbers from a kernel that disagrees with the tree it was compiled from.
//
//   ./predict [--records N] [--function F] [--seed S] [--max-depth D]
//             [--train-ranks R] [--procs 1,4] [--batches 1,64,256,1024,4096]
//             [--reps R] [--min-speedup X] [--csv DIR]
//             [--out BENCH_predict.json] [--validate BENCH_predict.json]
//
// --out writes the machine-readable JSON document; --validate re-parses a
// document and checks its schema, the differential-oracle record, and the
// headline claim (compiled throughput >= min_speedup x recursive at every
// batch >= 256, at p = 1 and at some p >= 4), exiting non-zero on violation.
// The `perf` ctest label runs this at tiny scale as a smoke test; CI
// revalidates the committed BENCH_predict.json with the shipped claim.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/compiled_tree.hpp"
#include "core/predict.hpp"
#include "core/tree.hpp"
#include "mp/collectives.hpp"
#include "mp/metrics.hpp"
#include "mp/runtime.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {

using scalparc::util::Json;

struct PredictRow {
  int procs = 0;
  int batch = 0;
  double recursive_seconds = 0.0;
  double compiled_seconds = 0.0;
  double recursive_records_per_s = 0.0;
  double compiled_records_per_s = 0.0;
  double speedup = 0.0;
  // Metrics registry of the compiled run (predict.batches / predict.records
  // counters, predict.depth histogram), embedded under "details".
  Json details;
};

// Schema + claim validation; prints the first violation and returns false.
bool validate(const Json& doc) {
  const auto complain = [](const std::string& why) {
    std::fprintf(stderr, "BENCH_predict.json validation failed: %s\n",
                 why.c_str());
    return false;
  };
  try {
    if (doc.at("bench").as_string() != "predict") {
      return complain("bench name is not 'predict'");
    }
    if (doc.at("records").as_int() <= 0) return complain("records <= 0");
    if (doc.at("tree_nodes").as_int() <= 0) return complain("tree_nodes <= 0");
    if (doc.at("tree_depth").as_int() <= 0) return complain("tree_depth <= 0");
    const double min_speedup = doc.at("min_speedup").as_double();
    if (!(min_speedup > 0.0)) return complain("min_speedup <= 0");
    // The differential oracle must have run over the full evaluation set and
    // found zero disagreements — a fast kernel that mispredicts is worthless.
    if (doc.at("differential_rows").as_int() <= 0) {
      return complain("differential_rows <= 0");
    }
    if (doc.at("differential_mismatches").as_int() != 0) {
      return complain("differential oracle found mismatches");
    }
    const auto& runs = doc.at("runs").as_array();
    if (runs.empty()) return complain("runs is empty");
    bool claim_p1 = false;
    bool claim_p4 = false;
    for (const Json& run : runs) {
      const int procs = static_cast<int>(run.at("procs").as_int());
      const int batch = static_cast<int>(run.at("batch").as_int());
      if (procs <= 0) return complain("run has procs <= 0");
      if (batch <= 0) return complain("run has batch <= 0");
      const double recursive = run.at("recursive_records_per_s").as_double();
      const double compiled = run.at("compiled_records_per_s").as_double();
      const double speedup = run.at("speedup").as_double();
      if (!(run.at("recursive_seconds").as_double() > 0.0) ||
          !(run.at("compiled_seconds").as_double() > 0.0) ||
          !(recursive > 0.0) || !(compiled > 0.0) || !(speedup > 0.0)) {
        return complain("run has non-positive measurement");
      }
      // The headline claim: at serving batch sizes (>= 256) the compiled
      // engine beats the recursive walk by at least min_speedup, both
      // single-rank and across a fanned-out worker pool.
      if (batch >= 256 && (procs == 1 || procs >= 4)) {
        if (speedup < min_speedup) {
          char why[128];
          std::snprintf(why, sizeof(why),
                        "compiled speedup %.3f below required %.2f at p=%d "
                        "batch=%d",
                        speedup, min_speedup, procs, batch);
          return complain(why);
        }
        claim_p1 = claim_p1 || procs == 1;
        claim_p4 = claim_p4 || procs >= 4;
      }
      // details.metrics must decode as a registry snapshot with the batch
      // telemetry the compiled path emits.
      const Json* details = run.find("details");
      if (details != nullptr) {
        const scalparc::mp::MetricsSnapshot snapshot =
            scalparc::mp::MetricsSnapshot::from_json(details->at("metrics"));
        if (snapshot.value("predict.records") <= 0.0) {
          return complain("details.metrics lacks predict.records");
        }
        if (snapshot.value("predict.batches") <= 0.0) {
          return complain("details.metrics lacks predict.batches");
        }
        const scalparc::mp::Metric* depth = snapshot.find("predict.depth");
        if (depth == nullptr ||
            depth->kind != scalparc::mp::MetricKind::kHistogram ||
            depth->histogram.count == 0) {
          return complain(
              "details.metrics predict.depth is not a populated histogram");
        }
      }
    }
    if (!claim_p1) return complain("no run at p=1 with batch >= 256");
    if (!claim_p4) return complain("no run at p>=4 with batch >= 256");
  } catch (const std::exception& e) {
    return complain(e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);

  const std::string out_path = args.get_string("out", "");
  const std::string validate_path = args.get_string("validate", "");
  if (out_path.empty() && !validate_path.empty()) {
    // Validate-only mode.
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    return validate(util::Json::parse(buffer.str())) ? 0 : 1;
  }

  const auto records = static_cast<std::size_t>(args.get_int("records", 400000));
  const int function = static_cast<int>(args.get_int("function", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int max_depth = static_cast<int>(args.get_int("max-depth", 14));
  const int train_ranks = static_cast<int>(args.get_int("train-ranks", 4));
  const std::vector<std::int64_t> procs = args.get_int_list("procs", {1, 4});
  const std::vector<std::int64_t> batches =
      args.get_int_list("batches", {1, 64, 256, 1024, 4096});
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const double min_speedup = args.get_double("min-speedup", 2.0);
  const auto model = mp::CostModel::zero();

  // ---------------- workload ------------------------------------------------
  // Train on the paper's Quest generator (function 6 splits on the elevel
  // categorical attribute, so the compiled tree exercises the mixed kernel
  // and its fallback-leaf arena, not just the branchless continuous path).
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = static_cast<data::LabelFunction>(function);
  const data::QuestGenerator generator(config);
  const data::Dataset dataset = generator.generate(0, records);

  core::InductionControls controls;
  controls.options.max_depth = max_depth;
  const core::FitReport fit = core::ScalParC::fit(dataset, train_ranks, controls);
  const core::DecisionTree& tree = fit.tree;
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  std::printf(
      "model: %d tree node(s) -> %d flat node(s), depth %d, %s kernel, "
      "%.1f KiB payload\n",
      tree.num_nodes(), compiled.num_nodes(), compiled.depth(),
      compiled.all_continuous() ? "continuous" : "mixed",
      static_cast<double>(compiled.payload_bytes()) / 1024.0);

  // ---------------- differential oracle -------------------------------------
  // Row-for-row agreement with the recursive walk before any timing: a fast
  // kernel that disagrees with the tree it was compiled from is a bug, not a
  // speedup.
  std::int64_t mismatches = 0;
  {
    const std::vector<std::int32_t> got = compiled.predict_all(dataset);
    for (std::size_t row = 0; row < records; ++row) {
      if (got[row] != tree.predict(dataset, row)) ++mismatches;
    }
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "differential oracle: %lld mismatch(es) over %zu rows — "
                   "refusing to bench a wrong kernel\n",
                   static_cast<long long>(mismatches), records);
      return 1;
    }
    std::printf("differential oracle: %zu rows, 0 mismatches\n\n", records);
  }

  // Enough scoring passes per timed region to dwarf timer and thread-spawn
  // noise even at smoke scale.
  const int iters =
      static_cast<int>(std::max<std::size_t>(1, 4000000 / records));

  // Best-of-reps wall time at p ranks: each rank scores its contiguous shard
  // of the evaluation set `iters` times, recursively (batch == 0) or through
  // the compiled engine in `batch`-row slices. Returns the slowest rank's
  // seconds; compiled runs also surface the run's metrics registry.
  double checksum = 0.0;
  const auto time_rank_loop = [&](int p, int batch, Json* details) {
    double best_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<double> elapsed(static_cast<std::size_t>(p), 0.0);
      std::vector<double> sinks(static_cast<std::size_t>(p), 0.0);
      const mp::RunResult run = mp::run_ranks(p, model, [&](mp::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const auto np = static_cast<std::size_t>(comm.size());
        const std::size_t lo = records * r / np;
        const std::size_t hi = records * (r + 1) / np;
        std::vector<std::int32_t> out(std::max<std::size_t>(
            1, static_cast<std::size_t>(batch)));
        mp::barrier(comm);
        util::Stopwatch timer;
        double sink = 0.0;
        for (int iter = 0; iter < iters; ++iter) {
          if (batch == 0) {
            for (std::size_t row = lo; row < hi; ++row) {
              sink += static_cast<double>(tree.predict(dataset, row));
            }
          } else {
            for (std::size_t pos = lo; pos < hi;
                 pos += static_cast<std::size_t>(batch)) {
              const std::size_t end =
                  std::min(hi, pos + static_cast<std::size_t>(batch));
              compiled.predict_batch(
                  dataset, pos, end,
                  std::span<std::int32_t>(out.data(), end - pos));
              sink += static_cast<double>(out[0]);
            }
          }
        }
        elapsed[r] = timer.elapsed_seconds();
        sinks[r] = sink;
      });
      const double rep_seconds =
          *std::max_element(elapsed.begin(), elapsed.end());
      best_seconds = rep == 0 ? rep_seconds : std::min(best_seconds, rep_seconds);
      for (const double s : sinks) checksum += s;
      if (details != nullptr) {
        *details = Json::object();
        (*details)["metrics"] = run.metrics.to_json();
      }
    }
    return best_seconds;
  };

  // ---------------- timing grid ---------------------------------------------
  bench::CsvWriter csv(args, "predict.csv",
                       "procs,batch,impl,seconds,records_per_s");
  const double scored =
      static_cast<double>(records) * static_cast<double>(iters);
  std::printf("scoring %zu records x %d pass(es) per timing\n\n", records,
              iters);
  std::printf("%6s %7s %15s %15s %17s %17s %9s\n", "procs", "batch",
              "recursive(ms)", "compiled(ms)", "recursive rec/s",
              "compiled rec/s", "speedup");
  std::vector<PredictRow> rows;
  for (const std::int64_t p : procs) {
    // One recursive baseline per rank count; it has no batch dimension.
    const double recursive_seconds =
        time_rank_loop(static_cast<int>(p), /*batch=*/0, nullptr);
    csv.row("%d,-,recursive,%.6f,%.1f", static_cast<int>(p), recursive_seconds,
            scored / recursive_seconds);
    for (const std::int64_t b : batches) {
      PredictRow row;
      row.procs = static_cast<int>(p);
      row.batch = static_cast<int>(b);
      row.recursive_seconds = recursive_seconds;
      row.compiled_seconds = time_rank_loop(row.procs, row.batch, &row.details);
      row.recursive_records_per_s = scored / row.recursive_seconds;
      row.compiled_records_per_s = scored / row.compiled_seconds;
      row.speedup = row.compiled_records_per_s / row.recursive_records_per_s;
      std::printf("%6d %7d %15.3f %15.3f %17.3e %17.3e %8.2fx\n", row.procs,
                  row.batch, row.recursive_seconds * 1e3,
                  row.compiled_seconds * 1e3, row.recursive_records_per_s,
                  row.compiled_records_per_s, row.speedup);
      csv.row("%d,%d,compiled,%.6f,%.1f", row.procs, row.batch,
              row.compiled_seconds, row.compiled_records_per_s);
      rows.push_back(std::move(row));
    }
  }
  std::printf("\n(checksum %.3g keeps the kernels honest)\n", checksum);

  // ---------------- JSON document ------------------------------------------
  Json doc = Json::object();
  doc["bench"] = "predict";
  doc["records"] = static_cast<std::int64_t>(records);
  doc["function"] = function;
  doc["seed"] = seed;
  doc["reps"] = reps;
  doc["min_speedup"] = min_speedup;
  doc["tree_nodes"] = tree.num_nodes();
  doc["flat_nodes"] = compiled.num_nodes();
  doc["tree_depth"] = compiled.depth();
  doc["all_continuous"] = compiled.all_continuous();
  doc["differential_rows"] = static_cast<std::int64_t>(records);
  doc["differential_mismatches"] = mismatches;
  Json runs = Json::array();
  for (const PredictRow& row : rows) {
    Json run = Json::object();
    run["procs"] = row.procs;
    run["batch"] = row.batch;
    run["recursive_seconds"] = row.recursive_seconds;
    run["compiled_seconds"] = row.compiled_seconds;
    run["recursive_records_per_s"] = row.recursive_records_per_s;
    run["compiled_records_per_s"] = row.compiled_records_per_s;
    run["speedup"] = row.speedup;
    run["details"] = row.details;
    runs.push_back(std::move(run));
  }
  doc["runs"] = std::move(runs);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", out_path.c_str());
  }
  if (!validate_path.empty()) {
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    if (!validate(util::Json::parse(buffer.str()))) return 1;
    std::printf("validation OK: %s\n", validate_path.c_str());
  }
  return 0;
}
