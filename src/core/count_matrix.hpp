// Count matrices (§2): per-partition class histograms.
//
// A CountMatrix has one row per candidate partition (2 for a continuous
// binary split, `cardinality` for a categorical multi-way split) and one
// column per class; entry (i, j) is n_ij, the number of records of class j
// in partition i. Stored flat so a matrix can go over the wire and through
// reductions unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace scalparc::core {

class CountMatrix {
 public:
  CountMatrix() = default;
  CountMatrix(int rows, int cols) : rows_(rows), cols_(cols) {
    if (rows < 0 || cols <= 0) {
      throw std::invalid_argument("CountMatrix: bad shape");
    }
    counts_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                   0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  std::int64_t& at(int row, int col) {
    return counts_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                   static_cast<std::size_t>(col)];
  }
  std::int64_t at(int row, int col) const {
    return counts_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                   static_cast<std::size_t>(col)];
  }

  void increment(int row, int col) { ++at(row, col); }

  std::int64_t row_total(int row) const {
    const auto* begin = counts_.data() +
                        static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_);
    return std::accumulate(begin, begin + cols_, std::int64_t{0});
  }

  std::int64_t total() const {
    return std::accumulate(counts_.begin(), counts_.end(), std::int64_t{0});
  }

  std::span<const std::int64_t> flat() const { return counts_; }
  std::span<std::int64_t> flat_mutable() { return counts_; }

  // Reconstructs a matrix from its wire form.
  static CountMatrix from_flat(int rows, int cols,
                               std::span<const std::int64_t> flat) {
    CountMatrix m(rows, cols);
    if (flat.size() != m.counts_.size()) {
      throw std::invalid_argument("CountMatrix::from_flat: size mismatch");
    }
    std::copy(flat.begin(), flat.end(), m.counts_.begin());
    return m;
  }

  CountMatrix& operator+=(const CountMatrix& other) {
    if (rows_ != other.rows_ || cols_ != other.cols_) {
      throw std::invalid_argument("CountMatrix::operator+=: shape mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    return *this;
  }

  bool operator==(const CountMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && counts_ == other.counts_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> counts_;
};

}  // namespace scalparc::core
