// Splitting-phase helpers (PerformSplitI / PerformSplitII, §4): child-slot
// assignment for the splitting attribute's list and construction of the
// categorical value -> child mapping from the winning decision.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/count_matrix.hpp"
#include "data/attribute_list.hpp"

namespace scalparc::core {

// Continuous split "A < threshold": child 0 below, child 1 at or above.
void assign_children_continuous(std::span<const data::ContinuousEntry> segment,
                                double threshold, std::span<std::int32_t> out);
// SoA form: reads only the value stream; the branchless compare-and-select
// loop auto-vectorizes.
void assign_children_continuous(std::span<const double> values,
                                double threshold, std::span<std::int32_t> out);

// Categorical split via a value -> child-slot mapping (-1 never occurs in
// training data by construction; hitting one throws).
void assign_children_categorical(std::span<const data::CategoricalEntry> segment,
                                 std::span<const std::int32_t> value_to_child,
                                 std::span<std::int32_t> out);
// SoA form over the value stream.
void assign_children_categorical(std::span<const std::int32_t> values,
                                 std::span<const std::int32_t> value_to_child,
                                 std::span<std::int32_t> out);

// Multi-way mapping from the node's global count matrix: values with records
// get consecutive child slots in value order; absent values map to -1.
std::vector<std::int32_t> value_to_child_multiway(const CountMatrix& global);

// Binary-subset mapping: present values in the subset -> 0, other present
// values -> 1, absent values -> -1.
std::vector<std::int32_t> value_to_child_subset(const CountMatrix& global,
                                                std::uint64_t subset);

// Number of children implied by a mapping (max slot + 1; 0 if all absent).
int num_children_of(std::span<const std::int32_t> value_to_child);

}  // namespace scalparc::core
