// The continuous-telemetry layer: histogram quantiles and their JSON summary
// fields, the live registry's latest-per-source algebra, rolling-window
// quantiles and SLO burn accounting, the flight-recorder ring, Prometheus
// text exposition, the background exporter's epoch/delta discipline, the
// registry edge paths (kind-mismatch merges, disjoint-bucket folds, sinks
// outside rank threads, sampled trace dumps), the JSON structured-log knob,
// and the differential guarantee that a telemetered scoring loop stays
// within 5% of the untelemetered one.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/compiled_tree.hpp"
#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "mp/metrics.hpp"
#include "mp/runtime.hpp"
#include "mp/telemetry.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace scalparc {
namespace {

using core::CompiledTree;
using core::InductionControls;
using core::ScalParC;
using mp::Histogram;
using mp::MetricsSnapshot;
using util::Json;

data::Dataset make_training(std::uint64_t records, std::uint64_t seed = 7) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF2;
  return data::QuestGenerator(config).generate(0, records);
}

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          ("scalparc_telemetry_test_" + stem + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

std::vector<Json> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<Json> docs;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) docs.push_back(Json::parse(line));
  }
  return docs;
}

// Every test leaves the process-global telemetry state as it found it.
class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    telemetry::set_live_metrics_enabled(false);
    telemetry::reset_live_metrics();
    telemetry::set_flight_capacity(0);
    telemetry::arm_flight_dump("");
  }
};

// ---------------------------------------------------------------------------
// histogram_quantile + JSON summary fields
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(mp::histogram_quantile(h, 0.5), 0.0);
  h.observe(100);
  // A single observation is every quantile, clamped to the observed max.
  EXPECT_LE(mp::histogram_quantile(h, 0.5), 100.0);
  EXPECT_GT(mp::histogram_quantile(h, 0.5), 0.0);
  EXPECT_EQ(mp::histogram_quantile(h, 1.0), 100.0);
}

TEST(HistogramQuantile, OrdersAndClamps) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(10);
  h.observe(100000);
  const double p50 = mp::histogram_quantile(h, 0.50);
  const double p99 = mp::histogram_quantile(h, 0.99);
  EXPECT_LE(p50, p99);
  EXPECT_LT(p50, 20.0);  // inside the bucket holding 10
  // Out-of-range q is clamped, never UB.
  EXPECT_EQ(mp::histogram_quantile(h, 2.0), 100000.0);
  EXPECT_EQ(mp::histogram_quantile(h, -1.0),
            mp::histogram_quantile(h, 0.0));
  // The tail quantile never exceeds the observed max.
  EXPECT_LE(mp::histogram_quantile(h, 1.0), 100000.0);
}

TEST(HistogramQuantile, ZeroBucketIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(0);
  h.observe(1000);
  EXPECT_EQ(mp::histogram_quantile(h, 0.5), 0.0);
}

TEST(MetricsJson, HistogramsCarryQuantileSummaries) {
  MetricsSnapshot snapshot;
  for (std::uint64_t v = 1; v <= 100; ++v) snapshot.observe("lat", v);
  const Json doc = snapshot.to_json();
  const Json& entry = doc.at("lat");
  EXPECT_GT(entry.at("p50").as_double(), 0.0);
  EXPECT_LE(entry.at("p50").as_double(), entry.at("p95").as_double());
  EXPECT_LE(entry.at("p95").as_double(), entry.at("p99").as_double());
  EXPECT_LE(entry.at("p99").as_double(), 100.0);
  // The summary fields are derived, not stored: the round trip must still
  // reconstruct the identical histogram.
  const MetricsSnapshot back = MetricsSnapshot::from_json(doc);
  const mp::Metric* metric = back.find("lat");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->histogram.count, 100u);
  EXPECT_EQ(metric->histogram.max, 100u);
}

// ---------------------------------------------------------------------------
// Registry edge paths
// ---------------------------------------------------------------------------

TEST(MetricsEdge, KindMismatchMergeThrows) {
  MetricsSnapshot a;
  a.add("x", 1.0);
  MetricsSnapshot b;
  b.gauge_max("x", 2.0);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(MetricsEdge, DisjointBucketHistogramMerge) {
  MetricsSnapshot a;
  a.observe("h", 1);  // bucket 1
  MetricsSnapshot b;
  b.observe("h", 1u << 20);  // a far-away bucket
  a.merge(b);
  const mp::Metric* metric = a.find("h");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->histogram.count, 2u);
  EXPECT_EQ(metric->histogram.sum, 1u + (1u << 20));
  EXPECT_EQ(metric->histogram.max, 1u << 20);
  std::uint64_t nonzero = 0;
  for (const std::uint64_t c : metric->histogram.buckets) nonzero += c;
  EXPECT_EQ(nonzero, 2u);
}

TEST(MetricsEdge, SinkIsNullOutsideRankThreads) {
  EXPECT_EQ(mp::metrics_sink(), nullptr);
}

TEST(MetricsEdge, SampledTraceDumpIsIncomplete) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  util::TraceConfig config;
  config.sample_every = 2;
  ASSERT_TRUE(util::TraceCollector::instance().start(config));
  for (int i = 0; i < 4; ++i) {
    util::TraceScope span("findsplit_i", /*level=*/0);
  }
  const util::TraceDump dump = util::TraceCollector::instance().stop();
  // A sampled dump must advertise itself as incomplete so validators skip
  // the vtime-tiling invariant (half the spans are simply missing).
  EXPECT_FALSE(dump.complete());
  EXPECT_EQ(dump.sample_every, 2);
}

// ---------------------------------------------------------------------------
// Live registry
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, PublishIsLatestWinsPerSourceAndMergesAcrossSources) {
  telemetry::set_live_metrics_enabled(true);
  MetricsSnapshot r0;
  r0.add("work", 5.0);
  telemetry::publish_metrics("rank0", r0);
  r0.add("work", 5.0);  // cumulative: now 10
  telemetry::publish_metrics("rank0", r0);
  MetricsSnapshot r1;
  r1.add("work", 3.0);
  r1.gauge_max("peak", 7.0);
  telemetry::publish_metrics("rank1", r1);

  const MetricsSnapshot merged = telemetry::merged_live_metrics();
  EXPECT_EQ(merged.value("work"), 13.0);  // latest rank0 (10) + rank1 (3)
  EXPECT_EQ(merged.value("peak"), 7.0);

  telemetry::reset_live_metrics();
  EXPECT_TRUE(telemetry::merged_live_metrics().empty());
}

TEST_F(TelemetryTest, PublishIsIgnoredWhileDisabled) {
  ASSERT_FALSE(telemetry::live_metrics_enabled());
  MetricsSnapshot snapshot;
  snapshot.add("work", 1.0);
  telemetry::publish_metrics("rank0", snapshot);
  EXPECT_TRUE(telemetry::merged_live_metrics().empty());
}

// ---------------------------------------------------------------------------
// Rolling-window quantiles + SLO tracking
// ---------------------------------------------------------------------------

TEST(RollingQuantiles, WindowEvictsOldEpochs) {
  telemetry::RollingQuantiles rolling(2);
  EXPECT_EQ(rolling.window_epochs(), 2u);
  for (int i = 0; i < 100; ++i) rolling.observe(1u << 20);  // slow epoch
  EXPECT_GT(rolling.quantile(0.5), 1000.0);
  rolling.advance_epoch();
  for (int i = 0; i < 100; ++i) rolling.observe(4);
  // Both epochs still in the window: the p99 tail is the old slow epoch.
  EXPECT_GT(rolling.quantile(0.99), 1000.0);
  rolling.advance_epoch();
  for (int i = 0; i < 100; ++i) rolling.observe(4);
  // The slow epoch has been evicted; the window only holds fast epochs.
  EXPECT_LT(rolling.quantile(0.99), 100.0);
  EXPECT_EQ(rolling.windowed().count, 200u);
}

TEST_F(TelemetryTest, SloTrackerCountsBreachesAndBurn) {
  telemetry::set_flight_capacity(16);  // capture the breach-entry event
  telemetry::SloTracker slo(/*target_p99_us=*/100.0, /*window_epochs=*/2);
  for (int i = 0; i < 50; ++i) slo.observe_latency_us(10000);
  EXPECT_TRUE(slo.epoch_tick(1.0));
  EXPECT_TRUE(slo.epoch_tick(1.0));  // still violating: window holds the tail
  MetricsSnapshot metrics = slo.metrics();
  EXPECT_EQ(metrics.value("slo.target_p99_us"), 100.0);
  EXPECT_GT(metrics.value("slo.p99_us"), 100.0);
  EXPECT_EQ(metrics.value("slo.breaches"), 2.0);
  EXPECT_EQ(metrics.value("slo.burn_seconds"), 2.0);
  EXPECT_GT(metrics.value("slo.time_in_violation_s"), 0.0);
  // Breach *entry* records exactly one flight event, not one per epoch.
  int breach_events = 0;
  for (const telemetry::FlightEvent& event : telemetry::flight_events()) {
    if (event.kind == "slo_breach") ++breach_events;
  }
  EXPECT_EQ(breach_events, 1);

  // The second tick's advance evicted the slow epoch from the 2-epoch
  // window, so a fast epoch ends the violation and burn stops accruing.
  for (int i = 0; i < 50; ++i) slo.observe_latency_us(5);
  EXPECT_FALSE(slo.epoch_tick(1.0));
  metrics = slo.metrics();
  EXPECT_LT(metrics.value("slo.p99_us"), 100.0);
  EXPECT_EQ(metrics.value("slo.breaches"), 2.0);
  EXPECT_EQ(metrics.value("slo.burn_seconds"), 2.0);
  EXPECT_EQ(metrics.value("slo.time_in_violation_s"), 0.0);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, FlightRingEvictsOldestAndCountsDrops) {
  telemetry::set_flight_capacity(3);
  for (int i = 0; i < 5; ++i) {
    telemetry::record_event("test", "event " + std::to_string(i));
  }
  const std::vector<telemetry::FlightEvent> events =
      telemetry::flight_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().detail, "event 2");  // oldest surviving
  EXPECT_EQ(events.back().detail, "event 4");
  EXPECT_EQ(telemetry::flight_dropped(), 2u);
  EXPECT_LE(events.front().t_s, events.back().t_s);
  EXPECT_EQ(events.front().rank, -1);  // not a rank thread

  telemetry::clear_flight();
  EXPECT_TRUE(telemetry::flight_events().empty());
  EXPECT_EQ(telemetry::flight_dropped(), 0u);
}

TEST_F(TelemetryTest, RecordIsNoOpWhileDisabled) {
  ASSERT_EQ(telemetry::flight_capacity(), 0u);
  telemetry::record_event("test", "dropped on the floor");
  EXPECT_TRUE(telemetry::flight_events().empty());
  EXPECT_FALSE(telemetry::dump_flight(temp_path("disabled")));
}

TEST_F(TelemetryTest, DumpWritesFlightV1) {
  telemetry::set_flight_capacity(8);
  telemetry::record_event("model_swap", "hot-swap #1");
  telemetry::record_event("recovery", "restart after rank 2 failure");
  const std::string path = temp_path("flight");
  ASSERT_TRUE(telemetry::dump_flight(path));
  const std::vector<Json> lines = read_jsonl(path);
  ASSERT_EQ(lines.size(), 3u);
  const Json& header = lines[0];
  EXPECT_EQ(header.at("format").as_string(), "scalparc-flight-v1");
  EXPECT_EQ(header.at("capacity").as_int(), 8);
  EXPECT_EQ(header.at("dropped").as_int(), 0);
  EXPECT_EQ(header.at("events").as_int(), 2);
  EXPECT_EQ(lines[1].at("kind").as_string(), "model_swap");
  EXPECT_EQ(lines[2].at("kind").as_string(), "recovery");
  EXPECT_LE(lines[1].at("t_s").as_double(), lines[2].at("t_s").as_double());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(telemetry::exposition_name("comm.bytes_sent"),
            "scalparc_comm_bytes_sent");
  EXPECT_EQ(telemetry::exposition_name("a-b c"), "scalparc_a_b_c");
}

TEST(Exposition, RendersAllThreeKinds) {
  MetricsSnapshot snapshot;
  snapshot.add("comm.bytes_sent", 42.0);
  snapshot.gauge_max("induction.levels", 5.0);
  for (std::uint64_t v = 1; v <= 100; ++v) snapshot.observe("predict.depth", v);
  const std::string text = telemetry::render_exposition(snapshot);
  EXPECT_NE(text.find("# TYPE scalparc_comm_bytes_sent counter"),
            std::string::npos);
  EXPECT_NE(text.find("scalparc_comm_bytes_sent 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scalparc_induction_levels gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE scalparc_predict_depth summary"),
            std::string::npos);
  EXPECT_NE(text.find("scalparc_predict_depth{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scalparc_predict_depth_count 100"), std::string::npos);
  EXPECT_NE(text.find("scalparc_predict_depth_sum 5050"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetryExporter epochs and deltas
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ExporterEmitsConsistentEpochDeltas) {
  const std::string series_path = temp_path("series");
  const std::string expose_path = temp_path("expose");
  {
    telemetry::TelemetryOptions options;
    options.timeseries_path = series_path;
    options.expose_path = expose_path;
    options.interval_ms = 20;
    telemetry::TelemetryExporter exporter(options);
    MetricsSnapshot snapshot;
    for (int step = 1; step <= 5; ++step) {
      snapshot.add("work.steps", 1.0);
      snapshot.observe("work.latency_us", 100u * step);
      telemetry::publish_metrics("rank0", snapshot);
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    exporter.stop();
    EXPECT_GE(exporter.epochs(), 2);
  }

  const std::vector<Json> epochs = read_jsonl(series_path);
  ASSERT_GE(epochs.size(), 2u);
  std::int64_t prev_epoch = -1;
  double prev_total = 0.0;
  double delta_sum = 0.0;
  for (const Json& record : epochs) {
    EXPECT_EQ(record.at("format").as_string(), "scalparc-timeseries-v1");
    EXPECT_GT(record.at("epoch").as_int(), prev_epoch);
    prev_epoch = record.at("epoch").as_int();
    const Json* counter = record.at("counters").find("work.steps");
    if (counter == nullptr) continue;  // epoch sampled before first publish
    const double total = counter->at("total").as_double();
    const double delta = counter->at("delta").as_double();
    EXPECT_GE(total, prev_total) << "counter total went backwards";
    EXPECT_DOUBLE_EQ(delta, total - prev_total);
    prev_total = total;
    delta_sum += delta;
    const Json* hist = record.at("histograms").find("work.latency_us");
    if (hist != nullptr) {
      EXPECT_LE(hist->at("p50").as_double(), hist->at("p99").as_double());
    }
  }
  // The deltas telescope to the final total: nothing double-counted.
  EXPECT_DOUBLE_EQ(delta_sum, prev_total);
  EXPECT_DOUBLE_EQ(prev_total, 5.0);

  // The exposition snapshot reflects the final epoch atomically.
  std::ifstream expose(expose_path);
  ASSERT_TRUE(expose.good());
  std::stringstream buffer;
  buffer << expose.rdbuf();
  EXPECT_NE(buffer.str().find("scalparc_work_steps 5"), std::string::npos);

  std::filesystem::remove(series_path);
  std::filesystem::remove(expose_path);
}

TEST_F(TelemetryTest, ExporterEpochHookInjectsMetrics) {
  const std::string series_path = temp_path("hooked");
  {
    telemetry::TelemetryOptions options;
    options.timeseries_path = series_path;
    options.interval_ms = 1000;  // only the final stop() epoch fires
    options.epoch_hook = [](MetricsSnapshot& merged, double epoch_seconds) {
      merged.gauge_max("hook.epoch_seconds_seen", epoch_seconds >= 0.0);
      merged.add("hook.calls", 1.0);
    };
    telemetry::TelemetryExporter exporter(options);
    exporter.stop();
  }
  const std::vector<Json> epochs = read_jsonl(series_path);
  ASSERT_GE(epochs.size(), 1u);
  EXPECT_NE(epochs.back().at("counters").find("hook.calls"), nullptr);
  std::filesystem::remove(series_path);
}

// ---------------------------------------------------------------------------
// Structured-log knob
// ---------------------------------------------------------------------------

TEST(LogFormat, ParsesAndRejectsLoudly) {
  EXPECT_EQ(util::parse_log_format("text"), util::LogFormat::kText);
  EXPECT_EQ(util::parse_log_format("json"), util::LogFormat::kJson);
  EXPECT_THROW(util::parse_log_format("yaml"), std::invalid_argument);
  EXPECT_THROW(util::parse_log_format(""), std::invalid_argument);
  const util::LogFormat saved = util::log_format();
  util::set_log_format(util::LogFormat::kJson);
  EXPECT_EQ(util::log_format(), util::LogFormat::kJson);
  util::set_log_format(saved);
}

// ---------------------------------------------------------------------------
// Differential: telemetry must not slow the scoring loop
// ---------------------------------------------------------------------------

// Mirrors serve's inner loop: score the evaluation set through the compiled
// engine in batches, once bare and once with the full telemetry stack
// running (live publishes, SLO observation, exporter epochs). The
// telemetered loop must sustain >= ~95% of the bare throughput — the same
// budget the tracing layer is held to.
TEST_F(TelemetryTest, TelemetryKeepsScoringWithinBudget) {
  const data::Dataset training = make_training(4000);
  const core::FitReport report = ScalParC::fit(training, 2);
  const CompiledTree compiled = CompiledTree::compile(report.tree);
  const data::Dataset scoring = make_training(20000, /*seed=*/11);
  const std::size_t batch = 512;
  std::vector<std::int32_t> out(batch);

  const auto timed_pass = [&](bool telemetered) {
    std::unique_ptr<telemetry::TelemetryExporter> exporter;
    std::unique_ptr<telemetry::SloTracker> slo;
    const std::string series_path = temp_path("overhead");
    if (telemetered) {
      telemetry::set_flight_capacity(256);
      slo = std::make_unique<telemetry::SloTracker>(1e9);
      telemetry::TelemetryOptions options;
      options.timeseries_path = series_path;
      options.interval_ms = 10;
      exporter = std::make_unique<telemetry::TelemetryExporter>(options);
    }
    double best = 1e300;
    std::uint64_t checksum = 0;
    MetricsSnapshot local;
    for (int attempt = 0; attempt < 3; ++attempt) {
      const auto begin = std::chrono::steady_clock::now();
      for (std::size_t row = 0; row < scoring.num_records(); row += batch) {
        const std::size_t end =
            std::min(row + batch, static_cast<std::size_t>(
                                      scoring.num_records()));
        const auto t0 = std::chrono::steady_clock::now();
        compiled.predict_batch(scoring, row, end,
                               std::span<std::int32_t>(out.data(), end - row));
        checksum += static_cast<std::uint64_t>(out[0]);
        if (telemetered) {
          const auto us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          local.add("serve.batches", 1.0);
          local.observe("serve.batch_us", static_cast<std::uint64_t>(us));
          slo->observe_latency_us(static_cast<std::uint64_t>(us));
          if (telemetry::live_metrics_enabled()) {
            telemetry::publish_metrics("bench", local);
          }
        }
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - begin;
      best = std::min(best, elapsed.count());
    }
    if (exporter != nullptr) {
      exporter->stop();
      std::filesystem::remove(series_path);
    }
    return std::pair<double, std::uint64_t>(best, checksum);
  };

  const auto [bare_s, bare_sum] = timed_pass(false);
  const auto [telemetered_s, telemetered_sum] = timed_pass(true);
  EXPECT_EQ(bare_sum, telemetered_sum) << "telemetry altered predictions";
  EXPECT_LT(telemetered_s, bare_s * 1.05 + 0.05)
      << "telemetry overhead above budget: " << bare_s << "s -> "
      << telemetered_s << "s";
}

}  // namespace
}  // namespace scalparc
