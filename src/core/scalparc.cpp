#include "core/scalparc.hpp"

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "mp/fault.hpp"
#include "mp/telemetry.hpp"
#include "sort/partition_util.hpp"

namespace scalparc::core {

namespace {

struct Attempt {
  std::vector<InductionResult> results;
  mp::RunResult run;
};

Attempt run_fit(const data::Dataset& training, int nranks,
                const InductionControls& controls, const mp::CostModel& model,
                const mp::RunOptions& options) {
  const std::uint64_t total = training.num_records();
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(total, nranks);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);

  Attempt attempt;
  attempt.results.resize(static_cast<std::size_t>(nranks));
  attempt.run = mp::try_run_ranks(
      nranks, model,
      [&](mp::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const data::Dataset block = training.slice(offsets[r], offsets[r + 1]);
        attempt.results[r] = ScalParC::fit_rank(
            comm, block, static_cast<std::int64_t>(offsets[r]), total,
            controls);
      },
      options);
  return attempt;
}

FitReport report_from(Attempt&& attempt) {
  FitReport report;
  report.tree = std::move(attempt.results[0].tree);
  report.stats = std::move(attempt.results[0].stats);
  report.run = std::move(attempt.run);
  return report;
}

}  // namespace

InductionResult ScalParC::fit_rank(mp::Comm& comm,
                                   const data::Dataset& local_block,
                                   std::int64_t first_rid,
                                   std::uint64_t total_records,
                                   const InductionControls& controls) {
  return induce_tree_distributed(comm, local_block, first_rid, total_records,
                                 controls);
}

FitReport ScalParC::fit(const data::Dataset& training, int nranks,
                        const InductionControls& controls,
                        const mp::CostModel& model,
                        const mp::RunOptions& run_options) {
  if (nranks <= 0) {
    throw std::invalid_argument("ScalParC::fit: nranks must be positive");
  }
  Attempt attempt = run_fit(training, nranks, controls, model, run_options);
  if (attempt.run.failed()) std::rethrow_exception(attempt.run.error);
  return report_from(std::move(attempt));
}

FitReport ScalParC::fit_generated(const data::QuestGenerator& generator,
                                  std::uint64_t total_records, int nranks,
                                  const InductionControls& controls,
                                  const mp::CostModel& model,
                                  const mp::RunOptions& run_options) {
  if (nranks <= 0) {
    throw std::invalid_argument(
        "ScalParC::fit_generated: nranks must be positive");
  }
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(total_records, nranks);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);

  std::vector<InductionResult> results(static_cast<std::size_t>(nranks));
  mp::RunResult run = mp::run_ranks(
      nranks, model,
      [&](mp::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const data::Dataset block = generator.generate(offsets[r], sizes[r]);
        results[r] = fit_rank(comm, block,
                              static_cast<std::int64_t>(offsets[r]),
                              total_records, controls);
      },
      run_options);

  FitReport report;
  report.tree = std::move(results[0].tree);
  report.stats = std::move(results[0].stats);
  report.run = std::move(run);
  return report;
}

FitReport ScalParC::resume_from_checkpoint(const data::Dataset& training,
                                           int nranks,
                                           const InductionControls& controls,
                                           const mp::CostModel& model,
                                           const mp::RunOptions& run_options) {
  InductionControls resumed = controls;
  resumed.checkpoint.resume = true;
  return fit(training, nranks, resumed, model, run_options);
}

const char* to_string(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kCompleted:
      return "completed";
    case RecoveryOutcome::kRetriesExhausted:
      return "retries-exhausted";
    case RecoveryOutcome::kRecoveryBudgetExhausted:
      return "recovery-budget-exhausted";
    case RecoveryOutcome::kUnrecoverable:
      return "unrecoverable";
  }
  return "unknown";
}

namespace {

// Folds the recovery bookkeeping into the final attempt's metrics so one
// registry carries the whole story (docs/observability.md, recovery.*).
void absorb_recovery_metrics(mp::MetricsSnapshot& metrics,
                             const RecoveryReport& report,
                             const RecoveryBudget& budget) {
  metrics.add("recovery.attempts", static_cast<double>(report.attempts));
  metrics.gauge_max("recovery.outcome",
                    static_cast<double>(static_cast<int>(report.outcome)));
  if (report.events.empty()) return;
  metrics.add("recovery.recoveries", static_cast<double>(report.events.size()));
  int shrinks = 0, grows = 0, restarts = 0, rebalances = 0, demotions = 0;
  for (const RecoveryEvent& e : report.events) {
    switch (e.policy) {
      case RecoveryPolicy::kShrink: ++shrinks; break;
      case RecoveryPolicy::kGrow: ++grows; break;
      case RecoveryPolicy::kRestart: ++restarts; break;
      case RecoveryPolicy::kRebalance:
        if (e.demoted) {
          ++demotions;
        } else {
          ++rebalances;
        }
        break;
    }
  }
  if (shrinks > 0) metrics.add("recovery.shrinks", shrinks);
  if (grows > 0) metrics.add("recovery.grows", grows);
  if (restarts > 0) metrics.add("recovery.restarts", restarts);
  if (rebalances > 0) metrics.add("recovery.rebalances", rebalances);
  if (demotions > 0) metrics.add("recovery.demotions", demotions);
  metrics.add("recovery.heal_seconds", report.heal_seconds);
  if (budget.max_recoveries > 0) {
    metrics.gauge_max(
        "recovery.budget_remaining",
        static_cast<double>(budget.max_recoveries -
                            static_cast<int>(report.events.size())));
  }
}

}  // namespace

RecoveryReport ScalParC::fit_with_recovery(const data::Dataset& training,
                                           int nranks,
                                           const InductionControls& controls,
                                           const mp::CostModel& model,
                                           const mp::RunOptions& run_options,
                                           int max_retries,
                                           RecoveryPolicy policy) {
  RecoveryControls recovery;
  recovery.policy = policy;
  recovery.max_retries = max_retries;
  RecoveryReport report =
      fit_with_recovery(training, nranks, controls, recovery, model,
                        run_options);
  // Legacy contract: a run that did not complete rethrows its last failure.
  if (report.outcome != RecoveryOutcome::kCompleted) {
    std::rethrow_exception(report.last_error);
  }
  return report;
}

RecoveryReport ScalParC::fit_with_recovery(const data::Dataset& training,
                                           int nranks,
                                           const InductionControls& controls,
                                           const RecoveryControls& recovery,
                                           const mp::CostModel& model,
                                           const mp::RunOptions& run_options) {
  if (nranks <= 0) {
    throw std::invalid_argument(
        "ScalParC::fit_with_recovery: nranks must be positive");
  }
  if (controls.checkpoint.directory.empty()) {
    throw std::invalid_argument(
        "ScalParC::fit_with_recovery: controls.checkpoint.directory is "
        "required (recovery restarts from level checkpoints)");
  }
  if (recovery.join_ranks <= 0) {
    throw std::invalid_argument(
        "ScalParC::fit_with_recovery: recovery.join_ranks must be positive");
  }

  RecoveryReport report;
  InductionControls attempt_controls = controls;
  mp::RunOptions attempt_options = run_options;
  int world = nranks;
  // Gray-failure mitigation state: non-uniform re-tile weights (empty =
  // uniform) and the rank they steer away from. A second classification of
  // the same rank escalates the next rebalance to a demotion.
  std::vector<double> weights;
  int rebalanced_rank = -1;
  for (int retry = 0;; ++retry) {
    if (recovery.fault_schedule != nullptr) {
      attempt_options.fault_plan = recovery.fault_schedule->plan(retry);
    }
    Attempt attempt =
        run_fit(training, world, attempt_controls, model, attempt_options);
    report.attempts = retry + 1;
    if (!attempt.run.failed()) {
      report.fit = report_from(std::move(attempt));
      absorb_recovery_metrics(report.fit.run.metrics, report, recovery.budget);
      return report;
    }
    report.last_error = attempt.run.error;
    report.heal_seconds += attempt.run.wall_seconds;

    // Classify the failure before deciding whether recovery is even worth
    // attempting (the decision table in docs/runtime.md).
    bool io_error = false;
    bool corrupt = false;
    try {
      std::rethrow_exception(attempt.run.error);
    } catch (const CheckpointIoError&) {
      io_error = true;  // disk full / permission: a retry hits the same wall
    } catch (const CheckpointCorruptError&) {
      corrupt = true;  // damaged checkpoint: drop it, resume from earlier
    } catch (...) {
    }

    const auto fail_fast = [&](RecoveryOutcome outcome) {
      report.outcome = outcome;
      telemetry::record_event("recovery",
                              std::string("terminal: ") + to_string(outcome) +
                                  " after " + std::to_string(report.attempts) +
                                  " attempt(s)");
      report.fit.run = std::move(attempt.run);  // metrics + failure report
      absorb_recovery_metrics(report.fit.run.metrics, report, recovery.budget);
      return report;
    };
    if (io_error) return fail_fast(RecoveryOutcome::kUnrecoverable);
    if (retry >= recovery.max_retries) {
      return fail_fast(RecoveryOutcome::kRetriesExhausted);
    }
    const RecoveryBudget& budget = recovery.budget;
    if ((budget.max_recoveries > 0 &&
         static_cast<int>(report.events.size()) >= budget.max_recoveries) ||
        (budget.max_heal_seconds > 0.0 &&
         report.heal_seconds > budget.max_heal_seconds)) {
      return fail_fast(RecoveryOutcome::kRecoveryBudgetExhausted);
    }

    RecoveryEvent event;
    event.failed_rank = attempt.run.failed_rank;
    event.message = attempt.run.failure_message;
    // Faults are transient unless a schedule says otherwise: a plain plan
    // does not re-fire on the retry, matching a crashed-and-restarted
    // process. Without this a level-triggered kill would fire again on
    // every resume, forever. (With a schedule, plan(retry + 1) takes over
    // at the top of the next iteration.)
    attempt_options.fault_plan = nullptr;
    attempt_options.prior_world = 0;
    // A checkpoint that failed its read-side integrity checks can never be
    // resumed; discard the damaged level so the retry falls back to an
    // earlier one (or to scratch).
    if (corrupt) {
      const std::optional<int> damaged =
          checkpoint_latest_level(controls.checkpoint.directory);
      if (damaged) {
        std::error_code ec;
        std::filesystem::remove_all(
            checkpoint_level_dir(controls.checkpoint.directory, *damaged), ec);
      }
    }
    // Shrink/grow only on a classified rank death (the liveness registry
    // names the casualties); a deadlock/timeout has no dead rank to remove,
    // so the request degrades to a restart of the same world.
    const auto casualties = static_cast<int>(attempt.run.dead_ranks.size());
    const bool rank_died =
        attempt.run.failure_kind == mp::FailureKind::kRankDeath &&
        casualties > 0;
    const bool straggled =
        attempt.run.failure_kind == mp::FailureKind::kStraggler &&
        attempt.run.straggler_rank >= 0 && attempt.run.straggler_rank < world;
    const RecoveryPolicy want =
        report.events.size() < recovery.policy_sequence.size()
            ? recovery.policy_sequence[report.events.size()]
            : recovery.policy;
    if (want == RecoveryPolicy::kRebalance && straggled) {
      const int slow = attempt.run.straggler_rank;
      event.policy = RecoveryPolicy::kRebalance;
      event.straggler_rank = slow;
      event.straggler_slowdown = attempt.run.straggler_slowdown;
      if (rebalanced_rank == slow && world > 1) {
        // The same rank was classified again after a weighted re-tile:
        // steering work away did not clear the gray failure, so demote it —
        // shrink the world by one and drop the weights (the elastic restore
        // redistributes its partitions to the survivors).
        event.demoted = true;
        world -= 1;
        weights.clear();
        rebalanced_rank = -1;
      } else {
        // Re-tile the checkpointed attribute lists away from the slow rank
        // in inverse proportion to its observed slowdown: an 8x-throttled
        // rank with 1/8 of the records finishes its level in the same wall
        // time as a healthy rank with a full share.
        weights.assign(static_cast<std::size_t>(world), 1.0);
        weights[static_cast<std::size_t>(slow)] =
            1.0 / event.straggler_slowdown;
        rebalanced_rank = slow;
      }
      attempt_controls.checkpoint.allow_repartition = true;
    } else if ((want == RecoveryPolicy::kShrink ||
                want == RecoveryPolicy::kRebalance) &&
               rank_died && world > casualties) {
      // A hard rank death under kRebalance degrades to a shrink: weights
      // cannot help a rank that is gone, and any existing weights are sized
      // for a world that no longer exists.
      world -= casualties;
      event.policy = RecoveryPolicy::kShrink;
      weights.clear();
      rebalanced_rank = -1;
      // The survivors reload a checkpoint written by the larger world.
      attempt_controls.checkpoint.allow_repartition = true;
    } else if (want == RecoveryPolicy::kGrow && rank_died &&
               world > casualties) {
      const int survivors = world - casualties;
      world = survivors + recovery.join_ranks;
      event.policy = RecoveryPolicy::kGrow;
      event.joiners = recovery.join_ranks;
      // Ranks >= survivors are joiners: they must pass the capability
      // handshake before the re-tiling restore hands them partitions.
      attempt_options.prior_world = survivors;
      attempt_controls.checkpoint.allow_repartition = true;
    } else {
      // Includes a straggler classification under a non-rebalance policy:
      // nothing is known to be dead, so the same world restarts from the
      // checkpoint.
      event.policy = RecoveryPolicy::kRestart;
      if (straggled) {
        event.straggler_rank = attempt.run.straggler_rank;
        event.straggler_slowdown = attempt.run.straggler_slowdown;
      }
    }
    attempt_controls.checkpoint.rank_weights = weights;
    event.ranks_after = world;
    const std::optional<int> latest =
        checkpoint_latest_level(controls.checkpoint.directory);
    attempt_controls.checkpoint.resume = latest.has_value();
    event.resumed_level = latest ? *latest : -1;
    {
      const char* policy = "restart";
      switch (event.policy) {
        case RecoveryPolicy::kShrink: policy = "shrink"; break;
        case RecoveryPolicy::kGrow: policy = "grow"; break;
        case RecoveryPolicy::kRebalance: policy = "rebalance"; break;
        case RecoveryPolicy::kRestart: break;
      }
      telemetry::record_event(
          "recovery", std::string(policy) + " after rank " +
                          std::to_string(event.failed_rank) +
                          " failure; world " + std::to_string(event.ranks_after) +
                          ", resume level " +
                          std::to_string(event.resumed_level));
    }
    report.events.push_back(std::move(event));
  }
}

}  // namespace scalparc::core
