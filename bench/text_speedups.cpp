// Text table T1: the scalar results quoted in the paper's §5 prose.
//
// Paper (OCR-garbled numerals; the sentences are):
//   * "for 1.6 million records, ScalParC achieved a relative speedup of _
//      while going from 8 to 32 processors, and a relative speedup of _
//      while going from 64 to 128 processors"  [interpreting the garbled
//      processor counts consistently with Figure 3's axis]
//   * "while going from 64 to 128 processors, the relative speedup obtained
//      for 6.4 million records was _ and ... for 3.2 million records was _"
//   * "ScalParC could classify 6.4 million records in just _ seconds on 128
//      processors"
//
// This bench recomputes every quoted quantity at the requested scale and
// emits one row per claim so EXPERIMENTS.md can track paper-vs-measured.
//
//   ./text_speedups [--scale X] [--csv DIR]
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0 / 16.0);
  const auto sizes = bench::paper_sizes(scale);
  const auto generator = bench::paper_generator();
  const auto controls = bench::paper_controls();
  const auto model = mp::CostModel::cray_t3d();

  bench::CsvWriter csv(args, "text_speedups.csv",
                       "claim,records,procs_from,procs_to,value,ideal");

  const auto time_of = [&](std::uint64_t n, int p) {
    return core::ScalParC::fit_generated(generator, n, p, controls, model)
        .run.modeled_seconds;
  };

  std::printf("Text table T1: quoted scalar results (scale %.4g of paper sizes)\n\n", scale);

  const std::uint64_t n16 = sizes[3];  // 1.6M at scale 1
  const std::uint64_t n32 = sizes[4];  // 3.2M
  const std::uint64_t n64 = sizes[5];  // 6.4M

  {
    const double s = time_of(n16, 8) / time_of(n16, 32);
    std::printf("  %-11s  8->32 procs : relative speedup %5.2f (ideal 4.00)\n",
                bench::size_label(n16).c_str(), s);
    csv.row("rel_speedup,%llu,8,32,%.4f,4.0",
            static_cast<unsigned long long>(n16), s);
  }
  {
    const double s = time_of(n16, 64) / time_of(n16, 128);
    std::printf("  %-11s 64->128 procs: relative speedup %5.2f (ideal 2.00)\n",
                bench::size_label(n16).c_str(), s);
    csv.row("rel_speedup,%llu,64,128,%.4f,2.0",
            static_cast<unsigned long long>(n16), s);
  }
  {
    const double s = time_of(n32, 64) / time_of(n32, 128);
    std::printf("  %-11s 64->128 procs: relative speedup %5.2f (ideal 2.00)\n",
                bench::size_label(n32).c_str(), s);
    csv.row("rel_speedup,%llu,64,128,%.4f,2.0",
            static_cast<unsigned long long>(n32), s);
  }
  {
    const double s = time_of(n64, 64) / time_of(n64, 128);
    std::printf("  %-11s 64->128 procs: relative speedup %5.2f (ideal 2.00)\n",
                bench::size_label(n64).c_str(), s);
    csv.row("rel_speedup,%llu,64,128,%.4f,2.0",
            static_cast<unsigned long long>(n64), s);
    std::printf("  => larger training sets give better relative speedups: %s\n",
                time_of(n64, 64) / time_of(n64, 128) >
                        time_of(n32, 64) / time_of(n32, 128)
                    ? "reproduced"
                    : "NOT reproduced");
  }
  {
    const double t = time_of(n64, 128);
    std::printf("  %-11s on 128 procs : classified in %.2f modeled seconds\n",
                bench::size_label(n64).c_str(), t);
    csv.row("classify_time,%llu,128,128,%.4f,0",
            static_cast<unsigned long long>(n64), t);
  }

  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
