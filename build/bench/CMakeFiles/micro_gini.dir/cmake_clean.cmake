file(REMOVE_RECURSE
  "CMakeFiles/micro_gini.dir/micro_gini.cpp.o"
  "CMakeFiles/micro_gini.dir/micro_gini.cpp.o.d"
  "micro_gini"
  "micro_gini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
