#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace scalparc::util {

namespace {

// -1 = "take the initial level from the SCALPARC_LOG env var on first read".
constexpr int kLevelUnset = -1;
std::atomic<int> g_level{kLevelUnset};
std::mutex g_sink_mutex;

thread_local int t_rank = -1;

const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

int initial_level() {
  const char* env = std::getenv("SCALPARC_LOG");
  const LogLevel level =
      env != nullptr ? parse_log_level(env) : LogLevel::kWarn;
  return static_cast<int>(level);
}

}  // namespace

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kLevelUnset) {
    // Benign race: every thread computes the same env-derived value, and an
    // explicit set_log_level that slips in between wins via the strong CAS.
    int expected = kLevelUnset;
    const int from_env = initial_level();
    g_level.compare_exchange_strong(expected, from_env,
                                    std::memory_order_relaxed);
    level = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

double monotonic_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

void log_line(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[scalparc r%d +%.6fs %s] %.*s\n", t_rank,
                 monotonic_seconds(), level_tag(level),
                 static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "[scalparc %s] %.*s\n", level_tag(level),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace scalparc::util
