// Distributed hash table with flat open addressing.
//
// Functional twin of DistributedChainedHashTable (same key->owner mapping,
// same buffered all-to-all update/enquiry protocol, same insert-or-assign
// semantics), with the owner-side storage redesigned for the memory system:
//
//   * one flat slot array per rank instead of a vector-of-vectors of chains
//     — probing is pointer-free linear scanning within a cache line instead
//     of chasing a heap allocation per bucket;
//   * incoming update/enquiry rounds are processed in small probe groups:
//     the home slots of the next group are software-prefetched while the
//     current group probes, hiding the (random) first-touch miss that
//     dominates hash table throughput at scale.
//
// The local table grows by doubling at 70% load, so bulk updates stay O(1)
// amortized per key regardless of the constructor's bucket hint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/chained_hash.hpp"  // mix_key
#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::core {

template <mp::WireType V>
class DistributedFlatHashTable {
 public:
  struct Update {
    std::int64_t key = 0;
    V value{};
  };
  struct Lookup {
    V value{};
    bool found = false;
  };

  // How many incoming keys probe concurrently: slots for group g+1 are
  // prefetched while group g probes.
  static constexpr std::size_t kProbeGroup = 8;

  // Collective; all ranks must pass identical arguments. `num_buckets` fixes
  // the key->owner mapping (as in the chained table) and seeds the local
  // capacity; the local table rehashes independently as it fills.
  DistributedFlatHashTable(mp::Comm& comm, std::uint64_t num_buckets)
      : comm_(comm), num_buckets_(num_buckets) {
    if (num_buckets == 0) {
      throw std::invalid_argument(
          "DistributedFlatHashTable: need at least one bucket");
    }
    block_ = (num_buckets + static_cast<std::uint64_t>(comm.size()) - 1) /
             static_cast<std::uint64_t>(comm.size());
    std::size_t capacity = 16;
    while (capacity < block_ && capacity < (std::size_t{1} << 20)) capacity *= 2;
    slots_.resize(capacity);
    full_.assign(capacity, 0);
    mem_ = util::ScopedAllocation(comm.meter(), util::MemCategory::kNodeTable,
                                  capacity * (sizeof(Slot) + 1));
  }

  ~DistributedFlatHashTable() { publish_metrics(); }
  DistributedFlatHashTable(const DistributedFlatHashTable&) = delete;
  DistributedFlatHashTable& operator=(const DistributedFlatHashTable&) =
      delete;

  std::uint64_t num_buckets() const { return num_buckets_; }

  int owner_of(std::int64_t key) const {
    return static_cast<int>(bucket_of(key) / block_);
  }
  std::uint64_t bucket_of(std::int64_t key) const {
    return mix_key(static_cast<std::uint64_t>(key)) % num_buckets_;
  }

  std::size_t local_entries() const { return size_; }
  std::size_t local_capacity() const { return slots_.size(); }

  // Collective bulk insert-or-assign, blocked like the node table's update.
  void update(std::span<const Update> updates, std::int64_t block_limit = 0) {
    if (block_limit < 0) {
      throw std::invalid_argument("FlatHashTable::update: bad block limit");
    }
    if (block_limit == 0) {
      apply_round(updates);
      return;
    }
    const auto limit = static_cast<std::uint64_t>(block_limit);
    const std::uint64_t my_rounds = (updates.size() + limit - 1) / limit;
    const std::uint64_t rounds = mp::allreduce_value(comm_, my_rounds, mp::MaxOp{});
    for (std::uint64_t r = 0; r < rounds; ++r) {
      const std::uint64_t begin = std::min<std::uint64_t>(r * limit, updates.size());
      const std::uint64_t end = std::min<std::uint64_t>(begin + limit, updates.size());
      apply_round(updates.subspan(begin, end - begin));
    }
  }

  // Collective bulk lookup; results ordered like `keys`.
  std::vector<Lookup> enquire(std::span<const std::int64_t> keys) {
    const int p = comm_.size();
    std::vector<std::vector<std::int64_t>> enquiry(static_cast<std::size_t>(p));
    std::vector<int> destination(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const int dst = owner_of(keys[i]);
      destination[i] = dst;
      enquiry[static_cast<std::size_t>(dst)].push_back(keys[i]);
    }
    comm_.add_work(static_cast<double>(keys.size()));

    std::vector<std::vector<std::int64_t>> key_buffers =
        mp::alltoallv(comm_, enquiry);
    std::vector<std::vector<Lookup>> value_buffers(static_cast<std::size_t>(p));
    for (std::size_t src = 0; src < key_buffers.size(); ++src) {
      lookup_local_batch(key_buffers[src], value_buffers[src]);
      comm_.add_work(static_cast<double>(key_buffers[src].size()));
    }
    std::vector<std::vector<Lookup>> result_buffers =
        mp::alltoallv(comm_, value_buffers);

    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    std::vector<Lookup> out;
    out.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto dst = static_cast<std::size_t>(destination[i]);
      out.push_back(result_buffers[dst][cursor[dst]++]);
    }
    return out;
  }

 private:
  struct Slot {
    std::int64_t key = 0;
    V value{};
  };

  struct WireUpdate {
    std::int64_t key = 0;
    V value{};
  };

  std::size_t home_of(std::int64_t key) const {
    return static_cast<std::size_t>(mix_key(static_cast<std::uint64_t>(key))) &
           (slots_.size() - 1);
  }

  void prefetch_slot(std::size_t slot) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(slots_.data() + slot, 0, 1);
    __builtin_prefetch(full_.data() + slot, 0, 1);
#else
    (void)slot;
#endif
  }

  // Batched lookup with probe-group prefetching: while group g probes, the
  // home slots of group g+1 are already on their way into cache.
  void lookup_local_batch(std::span<const std::int64_t> keys,
                          std::vector<Lookup>& out) const {
    out.resize(keys.size());
    std::size_t homes[kProbeGroup];
    std::size_t next_homes[kProbeGroup];
    const std::size_t first = std::min(kProbeGroup, keys.size());
    for (std::size_t i = 0; i < first; ++i) {
      homes[i] = home_of(keys[i]);
      prefetch_slot(homes[i]);
    }
    for (std::size_t base = 0; base < keys.size(); base += kProbeGroup) {
      const std::size_t count = std::min(kProbeGroup, keys.size() - base);
      const std::size_t next_base = base + kProbeGroup;
      const std::size_t next_count =
          next_base < keys.size()
              ? std::min(kProbeGroup, keys.size() - next_base)
              : 0;
      for (std::size_t i = 0; i < next_count; ++i) {
        next_homes[i] = home_of(keys[next_base + i]);
        prefetch_slot(next_homes[i]);
      }
      for (std::size_t i = 0; i < count; ++i) {
        out[base + i] = probe(keys[base + i], homes[i]);
      }
      for (std::size_t i = 0; i < next_count; ++i) homes[i] = next_homes[i];
    }
  }

  Lookup probe(std::int64_t key, std::size_t home) const {
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t length = 1;
    ++lookups_;
    for (std::size_t s = home;; s = (s + 1) & mask, ++length) {
      if (!full_[s]) {
        probe_lengths_.observe(length);
        return Lookup{};
      }
      if (slots_[s].key == key) {
        probe_lengths_.observe(length);
        return Lookup{slots_[s].value, true};
      }
    }
  }

  void insert_or_assign(std::int64_t key, const V& value) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t length = 1;
    ++updates_;
    for (std::size_t s = home_of(key);; s = (s + 1) & mask, ++length) {
      if (!full_[s]) {
        full_[s] = 1;
        slots_[s] = Slot{key, value};
        ++size_;
        probe_lengths_.observe(length);
        return;
      }
      if (slots_[s].key == key) {
        slots_[s].value = value;
        probe_lengths_.observe(length);
        return;
      }
    }
  }

  void grow() {
    ++grows_;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    const std::size_t capacity = old_slots.size() * 2;
    slots_.assign(capacity, Slot{});
    full_.assign(capacity, 0);
    size_ = 0;
    mem_.resize(capacity * (sizeof(Slot) + 1));
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if (old_full[s]) insert_or_assign(old_slots[s].key, old_slots[s].value);
    }
  }

  void apply_round(std::span<const Update> round) {
    const int p = comm_.size();
    std::vector<std::vector<WireUpdate>> sendbufs(static_cast<std::size_t>(p));
    for (const Update& u : round) {
      sendbufs[static_cast<std::size_t>(owner_of(u.key))].push_back(
          WireUpdate{u.key, u.value});
    }
    comm_.add_work(static_cast<double>(round.size()));
    std::vector<std::vector<WireUpdate>> received = mp::alltoallv(comm_, sendbufs);
    for (const auto& buf : received) {
      // Prefetch a group ahead; insert_or_assign may rehash, which
      // invalidates prefetched addresses but not correctness, and rehashes
      // are O(log n) per table lifetime.
      for (std::size_t base = 0; base < buf.size(); base += kProbeGroup) {
        const std::size_t count = std::min(kProbeGroup, buf.size() - base);
        const std::size_t next_base = base + kProbeGroup;
        const std::size_t next_count =
            next_base < buf.size() ? std::min(kProbeGroup, buf.size() - next_base)
                                   : 0;
        for (std::size_t i = 0; i < next_count; ++i) {
          prefetch_slot(home_of(buf[next_base + i].key));
        }
        for (std::size_t i = 0; i < count; ++i) {
          insert_or_assign(buf[base + i].key, buf[base + i].value);
        }
      }
      comm_.add_work(static_cast<double>(buf.size()));
    }
  }

  // Flushes the table's probe telemetry into the calling rank's bound
  // metrics snapshot (no-op without one). Counters reset afterwards so a
  // second flush — e.g. destructor after an explicit call — adds nothing.
  void publish_metrics() {
    mp::MetricsSnapshot* sink = mp::metrics_sink();
    if (sink == nullptr) return;
    if (probe_lengths_.count > 0) {
      sink->merge_histogram("hash.probe_length", probe_lengths_);
    }
    if (lookups_ > 0) sink->add("hash.lookups", static_cast<double>(lookups_));
    if (updates_ > 0) sink->add("hash.updates", static_cast<double>(updates_));
    if (grows_ > 0) sink->add("hash.grows", static_cast<double>(grows_));
    if (lookups_ > 0 || updates_ > 0) {
      sink->gauge_max("hash.occupancy_pct",
                      100.0 * static_cast<double>(size_) /
                          static_cast<double>(slots_.size()));
      sink->gauge_max("hash.local_capacity",
                      static_cast<double>(slots_.size()));
    }
    probe_lengths_ = mp::Histogram{};
    lookups_ = updates_ = grows_ = 0;
  }

  mp::Comm& comm_;
  std::uint64_t num_buckets_;
  std::uint64_t block_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint8_t> full_;
  std::size_t size_ = 0;
  util::ScopedAllocation mem_;
  // Probe telemetry: lengths include the terminal slot, so a hit in the home
  // slot observes 1. `mutable` because enquire-side probing is const.
  mutable mp::Histogram probe_lengths_;
  mutable std::uint64_t lookups_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace scalparc::core
